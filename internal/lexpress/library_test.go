package lexpress

import "testing"

func TestStandardLibraryCompiles(t *testing.T) {
	lib, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"PBXToLDAP", "LDAPToPBX", "MPToLDAP", "LDAPToMP", "LDAPClosure"} {
		if _, ok := lib.Get(name); !ok {
			t.Errorf("missing %s", name)
		}
	}
}

func TestStandardPBXRoundTrip(t *testing.T) {
	lib := MustStandardLibrary()
	toLDAP, _ := lib.Get("PBXToLDAP")
	toPBX, _ := lib.Get("LDAPToPBX")

	station := Record{
		"extension": {"2-9000"},
		"name":      {"John Doe"},
		"cos":       {"1"},
		"room":      {"2C-401"},
	}
	img, err := toLDAP.Image(station)
	if err != nil {
		t.Fatal(err)
	}
	if img.First("telephoneNumber") != "+1 908 582 9000" {
		t.Errorf("tel = %q", img.First("telephoneNumber"))
	}
	if img.First("sn") != "Doe" {
		t.Errorf("sn = %q", img.First("sn"))
	}
	if img.First("lastUpdater") != "pbx" {
		t.Errorf("lastUpdater = %q", img.First("lastUpdater"))
	}
	back, err := toPBX.Image(img)
	if err != nil {
		t.Fatal(err)
	}
	for _, attr := range []string{"Extension", "Name", "COS", "Room"} {
		if back.First(attr) != station.First(attr) {
			t.Errorf("%s = %q, want %q", attr, back.First(attr), station.First(attr))
		}
	}
}

func TestStandardSingleWordNameSN(t *testing.T) {
	lib := MustStandardLibrary()
	toLDAP, _ := lib.Get("PBXToLDAP")
	img, err := toLDAP.Image(Record{"extension": {"2-1"}, "name": {"Cher"}})
	if err != nil {
		t.Fatal(err)
	}
	if img.First("sn") != "Cher" {
		t.Errorf("sn fallback = %q", img.First("sn"))
	}
}

func TestStandardMPRoundTrip(t *testing.T) {
	lib := MustStandardLibrary()
	toLDAP, _ := lib.Get("MPToLDAP")
	toMP, _ := lib.Get("LDAPToMP")

	mbx := Record{
		"mailbox":   {"9000"},
		"mailboxid": {"MBX000042"},
		"name":      {"John Doe"},
		"cos":       {"1"},
	}
	img, err := toLDAP.Image(mbx)
	if err != nil {
		t.Fatal(err)
	}
	if img.First("mailboxId") != "MBX000042" {
		t.Errorf("mailboxId = %q", img.First("mailboxId"))
	}
	back, err := toMP.Image(img)
	if err != nil {
		t.Fatal(err)
	}
	if back.First("Mailbox") != "9000" || back.First("Name") != "John Doe" {
		t.Errorf("back = %v", back)
	}
}

func TestStandardMPPartitionByMailboxPresence(t *testing.T) {
	lib := MustStandardLibrary()
	toMP, _ := lib.Get("LDAPToMP")
	// A phone number alone does not put a person on the messaging platform.
	phoneOnly := Record{
		"cn":              {"Pat Smith"},
		"telephonenumber": {"+1 908 582 7777"},
	}
	u, err := toMP.Translate(Descriptor{Source: "ldap", Op: OpAdd, New: phoneOnly})
	if err != nil {
		t.Fatal(err)
	}
	if u != nil {
		t.Fatalf("phone-only person routed to MP: %+v", u)
	}
	// With a mailbox number they are managed, and missing fields derive.
	subscriber := phoneOnly.Clone()
	subscriber.Set("mailboxNumber", "7777")
	u, err = toMP.Translate(Descriptor{Source: "ldap", Op: OpAdd, New: subscriber})
	if err != nil {
		t.Fatal(err)
	}
	if u == nil || u.Key != "7777" {
		t.Fatalf("u = %+v", u)
	}
	if u.New.First("Name") != "Pat Smith" {
		t.Errorf("Name = %q", u.New.First("Name"))
	}
}

func TestStandardOwnedAttributes(t *testing.T) {
	lib := MustStandardLibrary()
	fromPBX, _ := lib.Get("PBXToLDAP")
	owned := fromPBX.Owned()
	want := map[string]bool{"definityExtension": true, "definityName": true,
		"definityCOS": true, "definityCOR": true, "definityPort": true}
	if len(owned) != len(want) {
		t.Fatalf("owned = %v", owned)
	}
	for _, a := range owned {
		if !want[a] {
			t.Errorf("unexpected owned attr %q", a)
		}
	}
	// Owned attrs ride on translated updates.
	u, err := fromPBX.Translate(Descriptor{Source: "pbx", Op: OpDelete,
		Old: Record{"extension": {"2-9000"}, "name": {"X"}}})
	if err != nil {
		t.Fatal(err)
	}
	if u == nil || len(u.Owned) != len(want) {
		t.Fatalf("u = %+v", u)
	}
}

func TestClosureGuardsKeepNonUsersClean(t *testing.T) {
	lib := MustStandardLibrary()
	cl, _ := lib.Get("LDAPClosure")
	// A person with a phone but no devices: the closure must NOT conjure
	// definityExtension or mailboxNumber.
	old := Record{"cn": {"Visitor"}, "telephonenumber": {"+1 908 582 1111"}}
	rec := old.Clone()
	rec.Set("telephoneNumber", "+1 908 582 2222")
	if _, err := cl.ApplyClosure(old, rec, []string{"telephoneNumber"}); err != nil {
		t.Fatal(err)
	}
	if rec.Has("definityExtension") || rec.Has("mailboxNumber") {
		t.Errorf("closure invented device attributes: %v", rec)
	}
}

func TestClosurePropagatesForDeviceUsers(t *testing.T) {
	lib := MustStandardLibrary()
	cl, _ := lib.Get("LDAPClosure")
	old := Record{
		"cn":                {"John Doe"},
		"telephonenumber":   {"+1 908 582 9000"},
		"definityextension": {"2-9000"},
		"mailboxnumber":     {"9000"},
	}
	rec := old.Clone()
	rec.Set("telephoneNumber", "+1 908 583 1234")
	if _, err := cl.ApplyClosure(old, rec, []string{"telephoneNumber"}); err != nil {
		t.Fatal(err)
	}
	if rec.First("definityExtension") != "3-1234" {
		t.Errorf("ext = %q", rec.First("definityExtension"))
	}
	if rec.First("mailboxNumber") != "1234" {
		t.Errorf("mbx = %q", rec.First("mailboxNumber"))
	}
}

func TestClosureNamePropagation(t *testing.T) {
	lib := MustStandardLibrary()
	cl, _ := lib.Get("LDAPClosure")
	old := Record{
		"cn":                {"John Doe"},
		"definityextension": {"2-9000"},
		"definityname":      {"John Doe"},
	}
	rec := old.Clone()
	rec.Set("cn", "John Q Doe")
	if _, err := cl.ApplyClosure(old, rec, []string{"cn"}); err != nil {
		t.Fatal(err)
	}
	if rec.First("definityName") != "John Q Doe" {
		t.Errorf("definityName = %q", rec.First("definityName"))
	}
	if rec.Has("messagingName") {
		t.Error("messagingName conjured for non-mailbox user")
	}
}
