package lexpress

import (
	"fmt"
	"sort"
)

// compiler turns one mappingAST into executable programs.
type compiler struct {
	m *mappingAST

	prog       *program
	constIdx   map[string]int
	attrIdx    map[string]int
	patternIdx map[string]int
	tableIdx   map[string]int
}

func newCompiler(m *mappingAST) *compiler {
	return &compiler{
		m:          m,
		prog:       &program{},
		constIdx:   map[string]int{},
		attrIdx:    map[string]int{},
		patternIdx: map[string]int{},
		tableIdx:   map[string]int{},
	}
}

func (c *compiler) constant(s string) int {
	if i, ok := c.constIdx[s]; ok {
		return i
	}
	i := len(c.prog.consts)
	c.prog.consts = append(c.prog.consts, s)
	c.constIdx[s] = i
	return i
}

func (c *compiler) attr(name string) int {
	k := canon(name)
	if i, ok := c.attrIdx[k]; ok {
		return i
	}
	i := len(c.prog.attrs)
	c.prog.attrs = append(c.prog.attrs, name)
	c.attrIdx[k] = i
	return i
}

func (c *compiler) pattern(src string, glob bool) (int, error) {
	key := src
	if glob {
		key = "glob:" + src
	}
	if i, ok := c.patternIdx[key]; ok {
		return i, nil
	}
	var p *Pattern
	var err error
	if glob {
		p, err = Glob(src)
	} else {
		p, err = CompilePattern(src)
	}
	if err != nil {
		return 0, err
	}
	i := len(c.prog.patterns)
	c.prog.patterns = append(c.prog.patterns, p)
	c.patternIdx[key] = i
	return i, nil
}

func (c *compiler) table(name string) (int, error) {
	if i, ok := c.tableIdx[name]; ok {
		return i, nil
	}
	t, ok := c.m.Tables[name]
	if !ok {
		return 0, fmt.Errorf("lexpress: mapping %q: undefined table %q", c.m.Name, name)
	}
	i := len(c.prog.tables)
	c.prog.tables = append(c.prog.tables, t)
	c.tableIdx[name] = i
	return i, nil
}

func (c *compiler) emit(op opcode, a, b int) int {
	c.prog.code = append(c.prog.code, instr{Op: op, A: a, B: b})
	return len(c.prog.code) - 1
}

func (c *compiler) compileExpr(e expr) error {
	switch e := e.(type) {
	case strLit:
		c.emit(opPushConst, c.constant(e.Val), 0)
	case numLit:
		c.emit(opPushConst, c.constant(fmt.Sprint(e.Val)), 0)
	case attrRef:
		c.emit(opLoad, c.attr(e.Name), 0)
	case concatExpr:
		for _, p := range e.Parts {
			if err := c.compileExpr(p); err != nil {
				return err
			}
		}
		c.emit(opConcat, len(e.Parts), 0)
	case altExpr:
		for _, o := range e.Options {
			if err := c.compileExpr(o); err != nil {
				return err
			}
		}
		c.emit(opAlt, len(e.Options), 0)
	case callExpr:
		return c.compileCall(e)
	default:
		return fmt.Errorf("lexpress: unknown expression %T", e)
	}
	return nil
}

func (c *compiler) compileCall(e callExpr) error {
	switch e.Fn {
	case "group":
		// group(expr, "pattern", n): the pattern and group index must be
		// literals so the pattern compiles once at mapping-compile time.
		if len(e.Args) != 3 {
			return fmt.Errorf("lexpress: group() takes 3 arguments")
		}
		pat, ok := e.Args[1].(strLit)
		if !ok {
			return fmt.Errorf("lexpress: group() pattern must be a string literal")
		}
		n, ok := e.Args[2].(numLit)
		if !ok {
			return fmt.Errorf("lexpress: group() index must be a number literal")
		}
		pi, err := c.pattern(pat.Val, false)
		if err != nil {
			return err
		}
		if n.Val < 0 || n.Val > c.prog.patterns[pi].Groups() {
			return fmt.Errorf("lexpress: group index %d out of range for pattern %q", n.Val, pat.Val)
		}
		if err := c.compileExpr(e.Args[0]); err != nil {
			return err
		}
		c.emit(opGroup, pi, n.Val)
		return nil
	case "lookup":
		if len(e.Args) != 2 {
			return fmt.Errorf("lexpress: lookup() takes 2 arguments")
		}
		tn, ok := e.Args[0].(attrRef)
		if !ok {
			return fmt.Errorf("lexpress: lookup() table must be a name")
		}
		ti, err := c.table(tn.Name)
		if err != nil {
			return err
		}
		if err := c.compileExpr(e.Args[1]); err != nil {
			return err
		}
		c.emit(opLookup, ti, 0)
		return nil
	}
	b, ok := builtinByName[e.Fn]
	if !ok {
		return fmt.Errorf("lexpress: unknown function %q", e.Fn)
	}
	if len(e.Args) != b.arity {
		return fmt.Errorf("lexpress: %s() takes %d arguments, got %d", e.Fn, b.arity, len(e.Args))
	}
	// values(attr) loads the attr directly — it exists to make multi-valued
	// intent explicit in mapping sources.
	if b.fn == fnValues {
		a, ok := e.Args[0].(attrRef)
		if !ok {
			return fmt.Errorf("lexpress: values() takes an attribute name")
		}
		c.emit(opLoad, c.attr(a.Name), 0)
		return nil
	}
	for _, a := range e.Args {
		if err := c.compileExpr(a); err != nil {
			return err
		}
	}
	c.emit(opCall, int(b.fn), len(e.Args))
	return nil
}

func (c *compiler) compileCond(cd cond) error {
	switch cd := cd.(type) {
	case cmpCond:
		if err := c.compileExpr(cd.L); err != nil {
			return err
		}
		if err := c.compileExpr(cd.R); err != nil {
			return err
		}
		if cd.NE {
			c.emit(opNe, 0, 0)
		} else {
			c.emit(opEq, 0, 0)
		}
	case likeCond:
		pi, err := c.pattern(cd.Pat, !cd.IsMatch)
		if err != nil {
			return err
		}
		if err := c.compileExpr(cd.E); err != nil {
			return err
		}
		c.emit(opLike, pi, 0)
	case presentCond:
		c.emit(opPresent, c.attr(cd.Attr), 0)
	case notCond:
		if err := c.compileCond(cd.C); err != nil {
			return err
		}
		c.emit(opNot, 0, 0)
	case andCond:
		// Short-circuit: L false -> jump past R with false on stack.
		if err := c.compileCond(cd.L); err != nil {
			return err
		}
		j1 := c.emit(opJmpFalse, 0, 0)
		if err := c.compileCond(cd.R); err != nil {
			return err
		}
		j2 := c.emit(opJmp, 0, 0)
		c.prog.code[j1].A = len(c.prog.code)
		c.emit(opPushConst, c.constant(""), 0) // falsy
		c.prog.code[j2].A = len(c.prog.code)
	case orCond:
		if err := c.compileCond(cd.L); err != nil {
			return err
		}
		j1 := c.emit(opJmpFalse, 0, 0)
		c.emit(opPushConst, c.constant("1"), 0) // truthy
		j2 := c.emit(opJmp, 0, 0)
		c.prog.code[j1].A = len(c.prog.code)
		if err := c.compileCond(cd.R); err != nil {
			return err
		}
		c.prog.code[j2].A = len(c.prog.code)
	default:
		return fmt.Errorf("lexpress: unknown condition %T", cd)
	}
	return nil
}

// compileStmts compiles the ordered mapping body into one program.
func (c *compiler) compileStmts(stmts []stmt) (*program, error) {
	for _, s := range stmts {
		var guard cond
		switch s := s.(type) {
		case mapStmt:
			guard = s.Guard
		case setStmt:
			guard = s.Guard
		}
		var jGuard int = -1
		if guard != nil {
			if err := c.compileCond(guard); err != nil {
				return nil, err
			}
			jGuard = c.emit(opJmpFalse, 0, 0)
		}
		switch s := s.(type) {
		case mapStmt:
			if err := c.compileExpr(s.E); err != nil {
				return nil, err
			}
			c.emit(opStore, c.attr(s.Dst), 0)
		case setStmt:
			for _, e := range s.Es {
				if err := c.compileExpr(e); err != nil {
					return nil, err
				}
			}
			c.emit(opStoreN, c.attr(s.Dst), len(s.Es))
		default:
			return nil, fmt.Errorf("lexpress: unknown statement %T", s)
		}
		if jGuard >= 0 {
			c.prog.code[jGuard].A = len(c.prog.code)
		}
	}
	c.emit(opHalt, 0, 0)
	return c.prog, nil
}

// compileExprProgram compiles a single expression into its own program.
func compileExprProgram(m *mappingAST, e expr) (*program, error) {
	c := newCompiler(m)
	if err := c.compileExpr(e); err != nil {
		return nil, err
	}
	c.emit(opHalt, 0, 0)
	return c.prog, nil
}

// compileCondProgram compiles a condition into its own program.
func compileCondProgram(m *mappingAST, cd cond) (*program, error) {
	c := newCompiler(m)
	if err := c.compileCond(cd); err != nil {
		return nil, err
	}
	c.emit(opHalt, 0, 0)
	return c.prog, nil
}

// exprInputs lists the source attributes an expression reads (dependency
// analysis for closure rules and cycle detection).
func exprInputs(e expr) []string {
	set := map[string]bool{}
	var walk func(expr)
	walk = func(e expr) {
		switch e := e.(type) {
		case attrRef:
			set[canon(e.Name)] = true
		case concatExpr:
			for _, p := range e.Parts {
				walk(p)
			}
		case altExpr:
			for _, o := range e.Options {
				walk(o)
			}
		case callExpr:
			if e.Fn == "lookup" && len(e.Args) == 2 {
				walk(e.Args[1]) // arg 0 is the table name
				return
			}
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
