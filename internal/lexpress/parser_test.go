package lexpress

import (
	"strings"
	"testing"
)

func TestOwnsParsing(t *testing.T) {
	src := `
mapping M source "a" target "b" {
    key id -> id;
    map id = id;
    owns alpha, beta, gamma;
}
`
	m := compileOne(t, src, "M")
	owned := m.Owned()
	if len(owned) != 3 || owned[0] != "alpha" || owned[2] != "gamma" {
		t.Errorf("owned = %v", owned)
	}
	// Owned() returns a copy.
	owned[0] = "mutated"
	if m.Owned()[0] != "alpha" {
		t.Error("Owned() aliases internal state")
	}
}

func TestOwnsParseErrors(t *testing.T) {
	bad := []string{
		`mapping M source "a" target "b" { key id -> id; owns; }`,
		`mapping M source "a" target "b" { key id -> id; owns a,; }`,
		`mapping M source "a" target "b" { key id -> id; owns a b; }`,
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("compile succeeded: %s", src)
		}
	}
}

func TestDeriveGuardParsing(t *testing.T) {
	src := `
mapping M source "a" target "a" {
    key id -> id;
    derive out = lower(in) when present(flag) and in != "skip";
}
`
	m := compileOne(t, src, "M")
	// Guard false: flag missing.
	rec := Record{"id": {"1"}, "in": {"HELLO"}}
	old := rec.Clone()
	rec.Set("in", "WORLD")
	if _, err := m.ApplyClosure(old, rec, []string{"in"}); err != nil {
		t.Fatal(err)
	}
	if rec.Has("out") {
		t.Error("guarded rule fired without its guard")
	}
	// Guard true.
	rec.Set("flag", "y")
	rec.Set("in", "AGAIN")
	if _, err := m.ApplyClosure(old, rec, []string{"in"}); err != nil {
		t.Fatal(err)
	}
	if rec.First("out") != "again" {
		t.Errorf("out = %q", rec.First("out"))
	}
}

func TestDeriveGuardErrors(t *testing.T) {
	// 'like' takes a glob (metacharacters are escaped), so use 'matches'
	// with an invalid raw pattern.
	src := `mapping M source "a" target "a" { key id -> id; derive out = in when in matches "("; }`
	if _, err := Compile(src); err == nil {
		t.Error("bad guard pattern accepted")
	}
	src2 := `mapping M source "a" target "a" { key id -> id; derive out = in when; }`
	if _, err := Compile(src2); err == nil {
		t.Error("empty guard accepted")
	}
}

func TestWhenBlockForm(t *testing.T) {
	src := `
mapping M source "a" target "b" {
    key id -> id;
    map id = id;
    when kind == "x" {
        map a = "1";
        set b = "2", "3";
    }
}
`
	m := compileOne(t, src, "M")
	img, err := m.Image(Record{"id": {"1"}, "kind": {"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if img.First("a") != "1" || len(img.Get("b")) != 2 {
		t.Errorf("img = %v", img)
	}
	img, _ = m.Image(Record{"id": {"1"}, "kind": {"y"}})
	if img.Has("a") || img.Has("b") {
		t.Error("guard ignored in block form")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
# leading comment
mapping M source "a" target "b" {   // trailing comment
    key id -> id;  # about the key
    map id = id;
}
`
	if _, err := Compile(src); err != nil {
		t.Fatal(err)
	}
}

func TestStringEscapesInLiterals(t *testing.T) {
	src := `
mapping M source "a" target "b" {
    key id -> id;
    map id = id;
    map msg = "line1\nline2\t\"quoted\"\\";
}
`
	m := compileOne(t, src, "M")
	img, err := m.Image(Record{"id": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "line1\nline2\t\"quoted\"\\"
	if img.First("msg") != want {
		t.Errorf("msg = %q, want %q", img.First("msg"), want)
	}
}

func TestMappedAttrs(t *testing.T) {
	lib := MustStandardLibrary()
	m, _ := lib.Get("PBXToLDAP")
	got := m.MappedAttrs()
	joined := strings.Join(got, ",")
	for _, want := range []string{"cn", "definityExtension", "telephoneNumber", "objectClass", "lastUpdater"} {
		if !strings.Contains(joined, want) {
			t.Errorf("MappedAttrs missing %s: %v", want, got)
		}
	}
	for _, notWant := range []string{"sn"} { // derive output, not mapped
		if strings.Contains(joined, notWant+",") || strings.HasSuffix(joined, notWant) {
			t.Errorf("MappedAttrs includes derive output %s: %v", notWant, got)
		}
	}
}
