package lexpress

import (
	"fmt"
	"strings"
)

// opcode is a lexpress VM instruction code. The compiler emits
// machine-independent byte code which the interpreter (vm.go) executes —
// mirroring the paper's compiler/interpreter split (§4.2).
type opcode uint8

const (
	opHalt opcode = iota
	// opPushConst pushes const pool entry A as a scalar value.
	opPushConst
	// opLoad pushes all values of source attribute (attr pool A).
	opLoad
	// opConcat pops A values and pushes the concatenation of their first
	// elements; absent if any operand is absent.
	opConcat
	// opAlt pops A values and pushes the first non-absent one.
	opAlt
	// opCall invokes builtin A with B arguments (popped; result pushed).
	opCall
	// opLookup translates the popped scalar through table A.
	opLookup
	// opGroup matches the popped scalar against pattern A and pushes
	// capture group B ("" / absent-on-no-match semantics: pushes absent).
	opGroup
	// opStore pops one value and assigns it to target attribute A unless
	// that attribute was already assigned (first-mapping-wins).
	opStore
	// opStoreN pops B values and assigns their concatenated value lists to
	// target attribute A (multi-valued set) unless already assigned.
	opStoreN
	// opJmp jumps to absolute instruction A.
	opJmp
	// opJmpFalse pops a value and jumps to A when it is falsy.
	opJmpFalse
	// opEq/opNe pop two scalars and push a boolean.
	opEq
	opNe
	// opLike pops a scalar and pushes whether it matches pattern A.
	opLike
	// opPresent pushes whether source attribute A is present.
	opPresent
	// opNot negates the popped boolean.
	opNot
)

var opNames = map[opcode]string{
	opHalt: "halt", opPushConst: "pushconst", opLoad: "load",
	opConcat: "concat", opAlt: "alt", opCall: "call", opLookup: "lookup",
	opGroup: "group", opStore: "store", opStoreN: "storen",
	opJmp: "jmp", opJmpFalse: "jmpfalse", opEq: "eq", opNe: "ne",
	opLike: "like", opPresent: "present", opNot: "not",
}

// builtin identifies a VM builtin function.
type builtin uint8

const (
	fnSubstr builtin = iota
	fnLower
	fnUpper
	fnTrim
	fnReplace
	fnValues
	fnJoin
	fnSplit
	fnCount
	fnFirst
)

var builtinByName = map[string]struct {
	fn    builtin
	arity int
}{
	"substr":  {fnSubstr, 3},
	"lower":   {fnLower, 1},
	"upper":   {fnUpper, 1},
	"trim":    {fnTrim, 1},
	"replace": {fnReplace, 3},
	"values":  {fnValues, 1},
	"join":    {fnJoin, 2},
	"split":   {fnSplit, 2},
	"count":   {fnCount, 1},
	"first":   {fnFirst, 1},
}

var builtinNames = map[builtin]string{
	fnSubstr: "substr", fnLower: "lower", fnUpper: "upper", fnTrim: "trim",
	fnReplace: "replace", fnValues: "values", fnJoin: "join",
	fnSplit: "split", fnCount: "count", fnFirst: "first",
}

// instr is one VM instruction.
type instr struct {
	Op   opcode
	A, B int
}

// program is a compiled code unit with its pools. Programs are immutable
// after compilation and safe for concurrent execution.
type program struct {
	code     []instr
	consts   []string
	attrs    []string
	patterns []*Pattern
	tables   []*tableDef
}

// Disassemble renders the program for the lexc tool.
func (p *program) Disassemble() string {
	var b strings.Builder
	for i, in := range p.code {
		fmt.Fprintf(&b, "%4d  %-10s", i, opNames[in.Op])
		switch in.Op {
		case opPushConst:
			fmt.Fprintf(&b, "%q", p.consts[in.A])
		case opLoad, opStore, opPresent:
			fmt.Fprintf(&b, "%s", p.attrs[in.A])
		case opStoreN:
			fmt.Fprintf(&b, "%s, n=%d", p.attrs[in.A], in.B)
		case opConcat, opAlt:
			fmt.Fprintf(&b, "n=%d", in.A)
		case opCall:
			fmt.Fprintf(&b, "%s/%d", builtinNames[builtin(in.A)], in.B)
		case opLookup:
			fmt.Fprintf(&b, "table %s", p.tables[in.A].Name)
		case opGroup:
			fmt.Fprintf(&b, "pattern %q group %d", p.patterns[in.A].String(), in.B)
		case opLike:
			fmt.Fprintf(&b, "pattern %q", p.patterns[in.A].String())
		case opJmp, opJmpFalse:
			fmt.Fprintf(&b, "-> %d", in.A)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
