package lexpress

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Mapping is a compiled lexpress mapping from a source schema to a target
// schema. Mappings are immutable after compilation and safe for concurrent
// use. Two mappings are specified for each schema pair, one per direction
// (paper §4.2).
type Mapping struct {
	Name   string
	Source string
	Target string

	keySrc, keyDst string
	body           *program
	partition      *program // nil when the target manages all records
	originator     string
	owned          []string
	rules          []closureRule
}

// closureRule is one compiled derive statement.
type closureRule struct {
	dst    string // canonical
	inputs []string
	prog   *program
	guard  *program // nil = unconditional
}

// mayFire evaluates the rule's guard against rec.
func (r *closureRule) mayFire(rec Record) (bool, error) {
	if r.guard == nil {
		return true, nil
	}
	return runCond(r.guard, rec)
}

// Library is a set of compiled mappings indexed by name. Descriptions for
// new sources can be compiled and added at run time (paper §4.2).
type Library struct {
	mappings map[string]*Mapping
}

// Compile compiles lexpress source text (one or more mappings) into a
// library.
func Compile(src string) (*Library, error) {
	lib := &Library{mappings: map[string]*Mapping{}}
	if err := lib.Add(src); err != nil {
		return nil, err
	}
	return lib, nil
}

// Add compiles more source into an existing library (dynamic addition of
// new-source descriptions to running programs).
func (l *Library) Add(src string) error {
	p, err := newParser(src)
	if err != nil {
		return err
	}
	asts, err := p.parseUnit()
	if err != nil {
		return err
	}
	compiled := make([]*Mapping, 0, len(asts))
	for _, ast := range asts {
		if _, dup := l.mappings[ast.Name]; dup {
			return fmt.Errorf("lexpress: duplicate mapping %q", ast.Name)
		}
		m, err := compileMapping(ast)
		if err != nil {
			return err
		}
		compiled = append(compiled, m)
	}
	for _, m := range compiled {
		l.mappings[m.Name] = m
	}
	return nil
}

// Get returns a mapping by name.
func (l *Library) Get(name string) (*Mapping, bool) {
	m, ok := l.mappings[name]
	return m, ok
}

// ForPair returns the mapping from source to target, if any.
func (l *Library) ForPair(source, target string) (*Mapping, bool) {
	for _, m := range l.sorted() {
		if m.Source == source && m.Target == target {
			return m, true
		}
	}
	return nil, false
}

// Names lists mapping names, sorted.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.mappings))
	for n := range l.mappings {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (l *Library) sorted() []*Mapping {
	names := l.Names()
	out := make([]*Mapping, 0, len(names))
	for _, n := range names {
		out = append(out, l.mappings[n])
	}
	return out
}

func compileMapping(ast *mappingAST) (*Mapping, error) {
	m := &Mapping{
		Name:       ast.Name,
		Source:     ast.Source,
		Target:     ast.Target,
		keySrc:     ast.KeySrc,
		keyDst:     ast.KeyDst,
		originator: ast.Originator,
		owned:      append([]string(nil), ast.Owns...),
	}
	c := newCompiler(ast)
	body, err := c.compileStmts(ast.Stmts)
	if err != nil {
		return nil, fmt.Errorf("lexpress: mapping %q: %v", ast.Name, err)
	}
	m.body = body
	if ast.Partition != nil {
		p, err := compileCondProgram(ast, ast.Partition)
		if err != nil {
			return nil, fmt.Errorf("lexpress: mapping %q partition: %v", ast.Name, err)
		}
		m.partition = p
	}
	for _, d := range ast.Derives {
		prog, err := compileExprProgram(ast, d.E)
		if err != nil {
			return nil, fmt.Errorf("lexpress: mapping %q derive %s: %v", ast.Name, d.Dst, err)
		}
		rule := closureRule{
			dst:    canon(d.Dst),
			inputs: exprInputs(d.E),
			prog:   prog,
		}
		if d.Guard != nil {
			g, err := compileCondProgram(ast, d.Guard)
			if err != nil {
				return nil, fmt.Errorf("lexpress: mapping %q derive %s guard: %v", ast.Name, d.Dst, err)
			}
			rule.guard = g
		}
		m.rules = append(m.rules, rule)
	}
	return m, nil
}

// KeyAttrs returns the source and target key attribute names.
func (m *Mapping) KeyAttrs() (src, dst string) { return m.keySrc, m.keyDst }

// Originator returns the attribute designated by the originator
// characteristic ("" when none).
func (m *Mapping) Originator() string { return m.originator }

// Owned returns the source-schema attributes the target exclusively owns.
func (m *Mapping) Owned() []string { return append([]string(nil), m.owned...) }

// Disassemble renders the mapping's body byte code (for lexc).
func (m *Mapping) Disassemble() string { return m.body.Disassemble() }

// MappedAttrs returns the target attributes assigned by the mapping body's
// map/set statements — the attributes the source repository actually speaks
// for. Derive-rule outputs (schema-completion helpers like sn) are
// excluded; synchronization compares and converges only mapped attributes.
func (m *Mapping) MappedAttrs() []string {
	seen := map[string]bool{}
	var out []string
	for _, in := range m.body.code {
		if in.Op == opStore || in.Op == opStoreN {
			a := m.body.attrs[in.A]
			if !seen[canon(a)] {
				seen[canon(a)] = true
				out = append(out, a)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Image translates a full source record into the target schema: the mapping
// body runs first (ordered, first-mapping-wins), then the derive rules fill
// any still-unset target attributes to fixpoint.
func (m *Mapping) Image(src Record) (Record, error) {
	if src == nil {
		return nil, nil
	}
	out := NewRecord()
	assigned := map[string]bool{}
	machine := &vm{}
	if err := machine.run(m.body, src, out, assigned); err != nil {
		return nil, err
	}
	// Full-image closure: fire each rule at most once, only into unset
	// attributes, until no rule fires.
	for fired := true; fired; {
		fired = false
		for i := range m.rules {
			r := &m.rules[i]
			if assigned[r.dst] || out.Has(r.dst) {
				continue
			}
			if ok, err := r.mayFire(out); err != nil {
				return nil, err
			} else if !ok {
				continue
			}
			v, err := runExpr(r.prog, out)
			if err != nil {
				return nil, err
			}
			if len(v) > 0 {
				out.Set(r.dst, v...)
				assigned[r.dst] = true
				fired = true
			}
		}
	}
	return out, nil
}

// satisfiesPartition evaluates the partition constraint against a source
// record (the paper checks the constraint "against both the old and new
// attributes of the object", i.e. the update's own schema); an absent record
// never satisfies it, and a mapping without a constraint accepts every
// present record.
func (m *Mapping) satisfiesPartition(rec Record) (bool, error) {
	if rec == nil {
		return false, nil
	}
	if m.partition == nil {
		return true, nil
	}
	return runCond(m.partition, rec)
}

// Translate turns an update descriptor in the mapping's source schema into
// the update to apply to the target repository, or nil when the update does
// not concern the target (paper §4.2):
//
//	old violates / new satisfies  -> add     (record migrates in)
//	old satisfies / new satisfies -> modify
//	old satisfies / new violates  -> delete  (record migrates out)
//	old violates / new violates   -> skip    (nil)
//
// When the update's origin is the target itself, the returned update is
// marked Conditional so the applying filter uses reapply semantics (§5.4).
func (m *Mapping) Translate(d Descriptor) (*TargetUpdate, error) {
	var oldImg, newImg Record
	var err error
	if d.Op != OpAdd {
		if oldImg, err = m.Image(d.Old); err != nil {
			return nil, err
		}
	}
	if d.Op != OpDelete {
		if newImg, err = m.Image(d.New); err != nil {
			return nil, err
		}
	}
	oldOK, err := m.satisfiesPartition(d.Old)
	if err != nil {
		return nil, err
	}
	newOK, err := m.satisfiesPartition(d.New)
	if err != nil {
		return nil, err
	}
	if d.Op == OpAdd {
		oldOK = false
	}
	if d.Op == OpDelete {
		newOK = false
	}
	u := &TargetUpdate{Target: m.Target, Owned: m.Owned()}
	switch {
	case !oldOK && newOK:
		u.Op = OpAdd
	case oldOK && newOK:
		u.Op = OpModify
	case oldOK && !newOK:
		u.Op = OpDelete
	default:
		return nil, nil // not under this target's management
	}
	u.Old, u.New = oldImg, newImg
	if newImg != nil {
		u.Key = newImg.First(m.keyDst)
	}
	if oldImg != nil {
		u.OldKey = oldImg.First(m.keyDst)
	}
	if u.Key == "" {
		u.Key = u.OldKey
	}
	if u.OldKey == "" {
		u.OldKey = u.Key
	}
	if u.Key == "" {
		return nil, fmt.Errorf("lexpress: mapping %q: translated update has no key (%s)", m.Name, m.keyDst)
	}

	// Conditional-update detection: the source record names where the
	// update originated (the Originator characteristic designates which
	// attribute carries it); the descriptor's Origin is the fallback.
	origin := d.OriginName()
	if m.originator != "" {
		if v := recFirst(d.New, m.originator); v != "" {
			origin = v
		} else if v := recFirst(d.Old, m.originator); v != "" {
			origin = v
		}
	}
	u.Conditional = strings.EqualFold(origin, m.Target)
	return u, nil
}

func recFirst(r Record, attr string) string {
	if r == nil {
		return ""
	}
	return r.First(attr)
}

// ErrNoFixpoint reports a closure pass that could not reach a fixpoint for
// the current update (the runtime half of the paper's planned cyclic-
// dependency handling).
var ErrNoFixpoint = errors.New("lexpress: closure did not reach a fixpoint")

// ApplyClosure propagates an incremental change through the mapping's
// derive rules, implementing the paper's transitive-closure semantics with
// its conflict-resolution rule:
//
//   - a rule fires when one of its inputs changed;
//   - explicitly set attributes are never overwritten;
//   - the first rule to set an attribute wins — later rules (and rules fed
//     by inconsistently set attributes) leave it alone;
//   - each rule fires at most once per update, so the pass terminates; if
//     the final state still disagrees with some fired rule whose output was
//     explicitly set, that is precisely the paper's tolerated inconsistency
//     between explicitly set attributes.
//
// old is the record before the update, rec the record after (mutated in
// place); explicit lists the attributes the client set. It returns the
// attributes the closure changed.
func (m *Mapping) ApplyClosure(old, rec Record, explicit []string) ([]string, error) {
	changed := map[string]bool{}
	for _, a := range explicit {
		changed[canon(a)] = true
	}
	if old != nil {
		for _, a := range rec.Attrs() {
			if !sameValues(old.Get(a), rec.Get(a)) {
				changed[a] = true
			}
		}
		for _, a := range old.Attrs() {
			if !rec.Has(a) {
				changed[a] = true
			}
		}
	}
	explicitSet := map[string]bool{}
	for _, a := range explicit {
		explicitSet[canon(a)] = true
	}
	fired := map[int]bool{}
	var out []string
	for pass := 0; ; pass++ {
		if pass > len(m.rules)+1 {
			return out, ErrNoFixpoint
		}
		any := false
		for i := range m.rules {
			r := &m.rules[i]
			if fired[i] || explicitSet[r.dst] {
				continue
			}
			if !touchesAny(r.inputs, changed) {
				continue
			}
			if ok, err := r.mayFire(rec); err != nil {
				return out, err
			} else if !ok {
				continue
			}
			v, err := runExpr(r.prog, rec)
			if err != nil {
				return out, err
			}
			fired[i] = true
			any = true
			if len(v) == 0 || sameValues(rec.Get(r.dst), []string(v)) {
				continue
			}
			rec.Set(r.dst, v...)
			changed[r.dst] = true
			out = append(out, r.dst)
		}
		if !any {
			return out, nil
		}
	}
}

func touchesAny(inputs []string, changed map[string]bool) bool {
	for _, in := range inputs {
		if changed[in] {
			return true
		}
	}
	return false
}

func sameValues(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ClosureCycles returns the dependency cycles among derive rules (the
// compile-time half of cyclic-dependency identification). Each cycle is the
// list of attributes involved.
func (m *Mapping) ClosureCycles() [][]string {
	// Edges: rule.dst -> each input that is some rule's dst.
	producers := map[string]bool{}
	for _, r := range m.rules {
		producers[r.dst] = true
	}
	adj := map[string][]string{}
	for _, r := range m.rules {
		for _, in := range r.inputs {
			if producers[in] {
				adj[r.dst] = append(adj[r.dst], in)
			}
		}
	}
	// Iterative DFS cycle collection on a small graph.
	var cycles [][]string
	state := map[string]int{} // 0 unvisited, 1 in-stack, 2 done
	var stack []string
	var dfs func(string)
	dfs = func(n string) {
		state[n] = 1
		stack = append(stack, n)
		for _, next := range adj[n] {
			switch state[next] {
			case 0:
				dfs(next)
			case 1:
				// Found a cycle: slice the stack from next onward.
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == next {
						cyc := append([]string(nil), stack[i:]...)
						sort.Strings(cyc)
						cycles = append(cycles, cyc)
						break
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = 2
	}
	keys := make([]string, 0, len(adj))
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if state[k] == 0 {
			dfs(k)
		}
	}
	return dedupCycles(cycles)
}

func dedupCycles(cycles [][]string) [][]string {
	seen := map[string]bool{}
	var out [][]string
	for _, c := range cycles {
		k := strings.Join(c, "|")
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}
