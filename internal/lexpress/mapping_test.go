package lexpress

import (
	"strings"
	"testing"
)

// pbxToLDAP is a test mapping modeled on the paper's Definity example:
// Extension relates telephoneNumber and definityExtension.
const pbxToLDAP = `
# Definity PBX station records into the integrated LDAP schema.
mapping PBXToLDAP source "pbx" target "ldap" {
    key Extension -> definityExtension;

    table cosNames {
        "1" -> "standard";
        "2" -> "executive";
        default -> "standard";
    }

    map definityExtension = Extension;
    map definityName = Name;
    map cn = Name;
    map telephoneNumber = "+1 908 58" + group(Extension, "([0-9])-([0-9]+)", 1)
                          + " " + group(Extension, "([0-9])-([0-9]+)", 2);
    map definityCOS = lookup(cosNames, COS);
    map roomNumber = Room ? Location;          # alternate attribute mapping
    map lastUpdater = "pbx";
    set objectClass = "mcPerson", "definityUser";

    derive sn = group(cn, "[A-Za-z]+ ([A-Za-z]+)", 1);
}
`

const ldapToPBX = `
mapping LDAPToPBX source "ldap" target "pbx" {
    key definityExtension -> Extension;

    map Extension = definityExtension
                  ? group(telephoneNumber, "\\+1 908 58([0-9]) ([0-9]+)", 1) + "-"
                    + group(telephoneNumber, "\\+1 908 58([0-9]) ([0-9]+)", 2);
    map Name = definityName ? cn;
    map Room = roomNumber;

    partition when telephoneNumber like "+1 908 582 *" or definityExtension like "2-*";
    originator lastUpdater;
}
`

func compileOne(t testing.TB, src, name string) *Mapping {
	t.Helper()
	lib, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := lib.Get(name)
	if !ok {
		t.Fatalf("mapping %q missing", name)
	}
	return m
}

func pbxRecord() Record {
	return Record{
		"extension": {"2-9000"},
		"name":      {"John Doe"},
		"cos":       {"2"},
		"room":      {"2C-401"},
	}
}

func TestImageBasicMapping(t *testing.T) {
	m := compileOne(t, pbxToLDAP, "PBXToLDAP")
	img, err := m.Image(pbxRecord())
	if err != nil {
		t.Fatal(err)
	}
	if got := img.First("telephoneNumber"); got != "+1 908 582 9000" {
		t.Errorf("telephoneNumber = %q", got)
	}
	if got := img.First("definityCOS"); got != "executive" {
		t.Errorf("definityCOS = %q", got)
	}
	if got := img.Get("objectClass"); len(got) != 2 || got[0] != "mcPerson" || got[1] != "definityUser" {
		t.Errorf("objectClass = %v", got)
	}
	if got := img.First("roomNumber"); got != "2C-401" {
		t.Errorf("roomNumber = %q", got)
	}
	if got := img.First("lastUpdater"); got != "pbx" {
		t.Errorf("lastUpdater = %q", got)
	}
	// Derive rule fills sn from cn.
	if got := img.First("sn"); got != "Doe" {
		t.Errorf("sn = %q", got)
	}
}

func TestTableDefault(t *testing.T) {
	m := compileOne(t, pbxToLDAP, "PBXToLDAP")
	rec := pbxRecord()
	rec.Set("COS", "99")
	img, err := m.Image(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := img.First("definityCOS"); got != "standard" {
		t.Errorf("default lookup = %q", got)
	}
}

func TestAlternateAttributeMapping(t *testing.T) {
	m := compileOne(t, pbxToLDAP, "PBXToLDAP")
	rec := pbxRecord()
	rec.Set("Room") // remove
	rec.Set("Location", "Annex 3")
	img, err := m.Image(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := img.First("roomNumber"); got != "Annex 3" {
		t.Errorf("alternate mapping = %q", got)
	}
}

func TestDirtyDataYieldsAbsentNotError(t *testing.T) {
	m := compileOne(t, pbxToLDAP, "PBXToLDAP")
	rec := pbxRecord()
	rec.Set("Extension", "garbage")
	img, err := m.Image(rec)
	if err != nil {
		t.Fatal(err)
	}
	if img.Has("telephoneNumber") {
		t.Errorf("dirty extension produced telephoneNumber %q", img.First("telephoneNumber"))
	}
	// Key attribute still mapped directly.
	if img.First("definityExtension") != "garbage" {
		t.Error("direct map should still run")
	}
}

func TestFirstMappingWinsOrderedSpecialCases(t *testing.T) {
	src := `
mapping M source "a" target "b" {
    key id -> id;
    when kind == "operator" map cos = "0";
    map cos = "9";
    map id = id;
}
`
	m := compileOne(t, src, "M")
	img, err := m.Image(Record{"id": {"1"}, "kind": {"operator"}})
	if err != nil {
		t.Fatal(err)
	}
	if img.First("cos") != "0" {
		t.Errorf("special case lost: cos = %q", img.First("cos"))
	}
	img, err = m.Image(Record{"id": {"1"}, "kind": {"normal"}})
	if err != nil {
		t.Fatal(err)
	}
	if img.First("cos") != "9" {
		t.Errorf("general case: cos = %q", img.First("cos"))
	}
}

func TestTranslateRoutesByPartition(t *testing.T) {
	m := compileOne(t, ldapToPBX, "LDAPToPBX")
	managedOld := Record{
		"definityextension": {"2-9000"},
		"telephonenumber":   {"+1 908 582 9000"},
		"cn":                {"John Doe"},
	}
	managedNew := managedOld.Clone()
	managedNew.Set("roomNumber", "2C-500")

	// modify within the partition
	u, err := m.Translate(Descriptor{Source: "ldap", Op: OpModify, Key: "x", Old: managedOld, New: managedNew})
	if err != nil {
		t.Fatal(err)
	}
	if u == nil || u.Op != OpModify {
		t.Fatalf("u = %+v", u)
	}
	if u.Key != "2-9000" {
		t.Errorf("key = %q", u.Key)
	}
	if u.New.First("Room") != "2C-500" {
		t.Errorf("Room = %q", u.New.First("Room"))
	}

	// migrate out: number moves off this PBX -> delete (paper example)
	movedOut := managedOld.Clone()
	movedOut.Set("telephoneNumber", "+1 908 583 1111")
	movedOut.Set("definityExtension")
	u, err = m.Translate(Descriptor{Source: "ldap", Op: OpModify, Old: managedOld, New: movedOut})
	if err != nil {
		t.Fatal(err)
	}
	if u == nil || u.Op != OpDelete {
		t.Fatalf("migrate-out: %+v", u)
	}
	if u.OldKey != "2-9000" {
		t.Errorf("old key = %q", u.OldKey)
	}

	// migrate in: previously unmanaged number moves onto this PBX -> add
	outside := Record{"telephonenumber": {"+1 908 583 1111"}, "cn": {"Pat"}}
	inside := Record{"telephonenumber": {"+1 908 582 7777"}, "cn": {"Pat"}}
	u, err = m.Translate(Descriptor{Source: "ldap", Op: OpModify, Old: outside, New: inside})
	if err != nil {
		t.Fatal(err)
	}
	if u == nil || u.Op != OpAdd {
		t.Fatalf("migrate-in: %+v", u)
	}
	if u.Key != "2-7777" {
		t.Errorf("derived key = %q (extension should derive from number)", u.Key)
	}

	// unrelated record -> skip
	u, err = m.Translate(Descriptor{Source: "ldap", Op: OpModify,
		Old: Record{"telephonenumber": {"+1 908 583 1"}, "cn": {"Q"}},
		New: Record{"telephonenumber": {"+1 908 583 2"}, "cn": {"Q"}}})
	if err != nil {
		t.Fatal(err)
	}
	if u != nil {
		t.Fatalf("unmanaged record produced %+v", u)
	}
}

func TestTranslateAddAndDelete(t *testing.T) {
	m := compileOne(t, ldapToPBX, "LDAPToPBX")
	rec := Record{"definityextension": {"2-9000"}, "cn": {"John"}, "telephonenumber": {"+1 908 582 9000"}}
	u, err := m.Translate(Descriptor{Source: "ldap", Op: OpAdd, New: rec})
	if err != nil {
		t.Fatal(err)
	}
	if u == nil || u.Op != OpAdd {
		t.Fatalf("add: %+v", u)
	}
	u, err = m.Translate(Descriptor{Source: "ldap", Op: OpDelete, Old: rec})
	if err != nil {
		t.Fatal(err)
	}
	if u == nil || u.Op != OpDelete {
		t.Fatalf("delete: %+v", u)
	}
}

func TestConditionalReapplyDetection(t *testing.T) {
	m := compileOne(t, ldapToPBX, "LDAPToPBX")
	rec := Record{
		"definityextension": {"2-9000"},
		"telephonenumber":   {"+1 908 582 9000"},
		"cn":                {"John"},
		"lastupdater":       {"pbx"}, // the update came from the PBX
	}
	u, err := m.Translate(Descriptor{Source: "ldap", Op: OpModify, Old: rec, New: rec})
	if err != nil {
		t.Fatal(err)
	}
	if u == nil || !u.Conditional {
		t.Fatalf("reapplied update not conditional: %+v", u)
	}
	// Update that originated at LDAP is NOT conditional toward the PBX.
	rec2 := rec.Clone()
	rec2.Set("lastUpdater", "ldap")
	u, err = m.Translate(Descriptor{Source: "ldap", Op: OpModify, Old: rec2, New: rec2})
	if err != nil {
		t.Fatal(err)
	}
	if u == nil || u.Conditional {
		t.Fatalf("fresh update marked conditional: %+v", u)
	}
}

func TestTranslateWithoutKeyFails(t *testing.T) {
	m := compileOne(t, ldapToPBX, "LDAPToPBX")
	// An add inside the partition whose image cannot derive a key value.
	_, err := m.Translate(Descriptor{Source: "ldap", Op: OpAdd,
		New: Record{"cn": {"nobody"}, "telephonenumber": {"+1 908 582 x"}}})
	if err == nil {
		t.Fatal("expected key error")
	}
	if !strings.Contains(err.Error(), "key") {
		t.Errorf("err = %v", err)
	}
}

// The paper's closure example: telephoneNumber and definityExtension are
// related through the PBX Extension; changing either changes the other when
// the update propagates.
const ldapClosure = `
mapping LDAPClosure source "ldap" target "ldap" {
    key cn -> cn;
    derive telephoneNumber = "+1 908 58" + group(definityExtension, "([0-9])-([0-9]+)", 1)
                             + " " + group(definityExtension, "([0-9])-([0-9]+)", 2);
    derive definityExtension = group(telephoneNumber, "\\+1 908 58([0-9]) ([0-9]+)", 1) + "-"
                               + group(telephoneNumber, "\\+1 908 58([0-9]) ([0-9]+)", 2);
    derive mailboxNumber = group(telephoneNumber, "\\+1 908 58[0-9] ([0-9]+)", 1);
}
`

func TestClosurePropagatesTelephoneToExtension(t *testing.T) {
	m := compileOne(t, ldapClosure, "LDAPClosure")
	old := Record{
		"cn":                {"John Doe"},
		"telephonenumber":   {"+1 908 582 9000"},
		"definityextension": {"2-9000"},
		"mailboxnumber":     {"9000"},
	}
	rec := old.Clone()
	rec.Set("telephoneNumber", "+1 908 583 1234") // client changed the number only
	changed, err := m.ApplyClosure(old, rec, []string{"telephoneNumber"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.First("definityExtension") != "3-1234" {
		t.Errorf("definityExtension = %q", rec.First("definityExtension"))
	}
	// Multi-hop: the mailbox id changes because the telephone number did
	// (the PBX -> LDAP -> MP transitive chain of the paper).
	if rec.First("mailboxNumber") != "1234" {
		t.Errorf("mailboxNumber = %q", rec.First("mailboxNumber"))
	}
	if len(changed) != 2 {
		t.Errorf("changed = %v", changed)
	}
}

func TestClosureReverseDirection(t *testing.T) {
	m := compileOne(t, ldapClosure, "LDAPClosure")
	old := Record{
		"cn":                {"John Doe"},
		"telephonenumber":   {"+1 908 582 9000"},
		"definityextension": {"2-9000"},
	}
	rec := old.Clone()
	rec.Set("definityExtension", "2-7777")
	if _, err := m.ApplyClosure(old, rec, []string{"definityExtension"}); err != nil {
		t.Fatal(err)
	}
	if rec.First("telephoneNumber") != "+1 908 582 7777" {
		t.Errorf("telephoneNumber = %q", rec.First("telephoneNumber"))
	}
}

func TestClosureConflictResolution(t *testing.T) {
	// Paper §4.2: telephoneNumber and definityExtension explicitly set
	// inconsistently. Neither may overwrite the other; the first satisfied
	// mapping propagates onward.
	m := compileOne(t, ldapClosure, "LDAPClosure")
	old := Record{
		"cn":                {"John Doe"},
		"telephonenumber":   {"+1 908 582 9000"},
		"definityextension": {"2-9000"},
	}
	rec := old.Clone()
	rec.Set("telephoneNumber", "+1 908 583 1111")
	rec.Set("definityExtension", "2-2222") // inconsistent with the number
	if _, err := m.ApplyClosure(old, rec, []string{"telephoneNumber", "definityExtension"}); err != nil {
		t.Fatal(err)
	}
	if rec.First("telephoneNumber") != "+1 908 583 1111" {
		t.Error("explicit telephoneNumber overwritten")
	}
	if rec.First("definityExtension") != "2-2222" {
		t.Error("explicit definityExtension overwritten")
	}
	// Downstream attribute follows the first mapping in closure order.
	if rec.First("mailboxNumber") != "1111" {
		t.Errorf("mailboxNumber = %q", rec.First("mailboxNumber"))
	}
}

func TestClosureNoChangeNoFire(t *testing.T) {
	m := compileOne(t, ldapClosure, "LDAPClosure")
	old := Record{"cn": {"x"}, "telephonenumber": {"+1 908 582 9000"}, "definityextension": {"2-9000"}}
	rec := old.Clone()
	rec.Set("cn", "y")
	changed, err := m.ApplyClosure(old, rec, []string{"cn"})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Errorf("unrelated change fired closure: %v", changed)
	}
}

func TestClosureCyclesDetectedAtCompileTime(t *testing.T) {
	m := compileOne(t, ldapClosure, "LDAPClosure")
	cycles := m.ClosureCycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v", cycles)
	}
	c := cycles[0]
	if len(c) != 2 || c[0] != "definityextension" || c[1] != "telephonenumber" {
		t.Errorf("cycle = %v", c)
	}
	// An acyclic mapping reports none.
	acyclic := compileOne(t, pbxToLDAP, "PBXToLDAP")
	if got := acyclic.ClosureCycles(); len(got) != 0 {
		t.Errorf("acyclic mapping reported cycles %v", got)
	}
}

func TestLibraryDynamicAddAndDuplicate(t *testing.T) {
	lib, err := Compile(pbxToLDAP)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.Add(ldapToPBX); err != nil {
		t.Fatal(err)
	}
	if got := lib.Names(); len(got) != 2 {
		t.Fatalf("names = %v", got)
	}
	if err := lib.Add(pbxToLDAP); err == nil {
		t.Error("duplicate mapping accepted")
	}
	m, ok := lib.ForPair("ldap", "pbx")
	if !ok || m.Name != "LDAPToPBX" {
		t.Errorf("ForPair = %v %v", m, ok)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := map[string]string{
		"no key":        `mapping M source "a" target "b" { map x = y; }`,
		"unknown fn":    `mapping M source "a" target "b" { key a -> b; map x = frob(y); }`,
		"bad arity":     `mapping M source "a" target "b" { key a -> b; map x = lower(y, z); }`,
		"undef table":   `mapping M source "a" target "b" { key a -> b; map x = lookup(nope, y); }`,
		"bad pattern":   `mapping M source "a" target "b" { key a -> b; map x = group(y, "(", 1); }`,
		"group range":   `mapping M source "a" target "b" { key a -> b; map x = group(y, "(a)", 2); }`,
		"group nonlit":  `mapping M source "a" target "b" { key a -> b; map x = group(y, z, 1); }`,
		"dup key":       `mapping M source "a" target "b" { key a -> b; key c -> d; }`,
		"dup partition": `mapping M source "a" target "b" { key a -> b; partition when a == "1"; partition when a == "2"; }`,
		"unterminated":  `mapping M source "a" target "b" { key a -> b;`,
		"garbage":       `hello world`,
		"bad escape":    `mapping M source "a" target "b" { key a -> b; map x = "\q"; }`,
	}
	for name, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compile succeeded", name)
		}
	}
}

func TestConditionOperators(t *testing.T) {
	src := `
mapping M source "a" target "b" {
    key id -> id;
    map id = id;
    when x == "1" and y != "2" map a = "and";
    when x == "9" or present(z) map b = "or";
    when not x == "1" map c = "not";
    when (x == "1" or x == "2") and y == "2" map d = "grouped";
    when x matches "[0-9]+" map e = "matched";
}
`
	m := compileOne(t, src, "M")
	img, err := m.Image(Record{"id": {"i"}, "x": {"1"}, "y": {"3"}, "z": {"zz"}})
	if err != nil {
		t.Fatal(err)
	}
	if img.First("a") != "and" {
		t.Error("and failed")
	}
	if img.First("b") != "or" {
		t.Error("or via present failed")
	}
	if img.Has("c") {
		t.Error("not should have failed")
	}
	if img.Has("d") {
		t.Error("grouped should need y==2")
	}
	if img.First("e") != "matched" {
		t.Error("matches failed")
	}
}

func TestMultiValuedProcessing(t *testing.T) {
	src := `
mapping M source "a" target "b" {
    key id -> id;
    map id = id;
    map all = values(tags);
    map joined = join(values(tags), ",");
    map parts = split(csv, ";");
    map n = count(values(tags));
    map one = first(values(tags));
}
`
	m := compileOne(t, src, "M")
	img, err := m.Image(Record{"id": {"1"}, "tags": {"a", "b", "c"}, "csv": {"x;y"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := img.Get("all"); len(got) != 3 {
		t.Errorf("all = %v", got)
	}
	if img.First("joined") != "a,b,c" {
		t.Errorf("joined = %q", img.First("joined"))
	}
	if got := img.Get("parts"); len(got) != 2 || got[1] != "y" {
		t.Errorf("parts = %v", got)
	}
	if img.First("n") != "3" {
		t.Errorf("n = %q", img.First("n"))
	}
	if img.First("one") != "a" {
		t.Errorf("one = %q", img.First("one"))
	}
}

func TestStringBuiltins(t *testing.T) {
	src := `
mapping M source "a" target "b" {
    key id -> id;
    map id = id;
    map low = lower(name);
    map up = upper(name);
    map t = trim(padded);
    map rep = replace(name, "o", "0");
    map sub = substr(name, 1, 3);
    map clamped = substr(name, 90, 5);
}
`
	m := compileOne(t, src, "M")
	img, err := m.Image(Record{"id": {"1"}, "name": {"John"}, "padded": {"  hi  "}})
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]string{
		"low": "john", "up": "JOHN", "t": "hi", "rep": "J0hn", "sub": "ohn", "clamped": "",
	}
	for attr, want := range checks {
		if attr == "clamped" {
			if img.Has("clamped") {
				t.Errorf("clamped should be absent, got %q", img.First("clamped"))
			}
			continue
		}
		if got := img.First(attr); got != want {
			t.Errorf("%s = %q, want %q", attr, got, want)
		}
	}
}

func TestDisassembleIsReadable(t *testing.T) {
	m := compileOne(t, pbxToLDAP, "PBXToLDAP")
	d := m.Disassemble()
	for _, want := range []string{"load", "store", "pushconst", "lookup", "group", "halt"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestParseUnitNames(t *testing.T) {
	names, err := ParseUnit(pbxToLDAP + ldapToPBX)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "PBXToLDAP" || names[1] != "LDAPToPBX" {
		t.Errorf("names = %v", names)
	}
}

func BenchmarkE6LexpressCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(pbxToLDAP + ldapToPBX); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6LexpressTranslate(b *testing.B) {
	m := compileOne(b, ldapToPBX, "LDAPToPBX")
	old := Record{
		"definityextension": {"2-9000"},
		"telephonenumber":   {"+1 908 582 9000"},
		"cn":                {"John Doe"},
	}
	nw := old.Clone()
	nw.Set("roomNumber", "2C-500")
	d := Descriptor{Source: "ldap", Op: OpModify, Old: old, New: nw}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Translate(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7ClosureApply(b *testing.B) {
	m := compileOne(b, ldapClosure, "LDAPClosure")
	old := Record{
		"cn":                {"John Doe"},
		"telephonenumber":   {"+1 908 582 9000"},
		"definityextension": {"2-9000"},
		"mailboxnumber":     {"9000"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := old.Clone()
		rec.Set("telephoneNumber", "+1 908 583 1234")
		if _, err := m.ApplyClosure(old, rec, []string{"telephoneNumber"}); err != nil {
			b.Fatal(err)
		}
	}
}
