package lexpress

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPatternLiterals(t *testing.T) {
	p := MustCompilePattern("abc")
	if !p.Like("abc") || p.Like("ab") || p.Like("abcd") {
		t.Error("literal match broken")
	}
}

func TestPatternClassesAndReps(t *testing.T) {
	p := MustCompilePattern("[0-9]+-[0-9][0-9][0-9][0-9]")
	if !p.Like("5-9000") {
		t.Error("extension pattern should match 5-9000")
	}
	if p.Like("x-9000") || p.Like("5-900") {
		t.Error("extension pattern over-matches")
	}
}

func TestPatternCaptures(t *testing.T) {
	// The paper's Extension -> telephoneNumber relationship.
	p := MustCompilePattern("([0-9])-([0-9]+)")
	groups, ok := p.Match("5-9000")
	if !ok {
		t.Fatal("no match")
	}
	if groups[1] != "5" || groups[2] != "9000" {
		t.Errorf("groups = %v", groups)
	}
}

func TestPatternAlternation(t *testing.T) {
	p := MustCompilePattern("(cat|dog|mouse)s?")
	for _, s := range []string{"cat", "dogs", "mouse"} {
		if !p.Like(s) {
			t.Errorf("%q should match", s)
		}
	}
	if p.Like("cats and dogs") {
		t.Error("partial input matched")
	}
}

func TestPatternAnyAndOptional(t *testing.T) {
	p := MustCompilePattern("a.c?")
	if !p.Like("ab") || !p.Like("abc") || p.Like("a") {
		t.Error(". / ? handling broken")
	}
}

func TestPatternNegatedClass(t *testing.T) {
	p := MustCompilePattern("[^0-9]+")
	if !p.Like("abc") || p.Like("a1c") {
		t.Error("negated class broken")
	}
}

func TestPatternEscapes(t *testing.T) {
	p := MustCompilePattern(`\+1 \(908\) [0-9]+`)
	if !p.Like("+1 (908) 5829000") {
		t.Error("escaped metacharacters broken")
	}
}

func TestPatternBacktracking(t *testing.T) {
	p := MustCompilePattern("(a+)(a+)")
	groups, ok := p.Match("aaa")
	if !ok {
		t.Fatal("no match")
	}
	// Greedy first group backs off to leave one 'a' for the second.
	if groups[1] != "aa" || groups[2] != "a" {
		t.Errorf("groups = %v", groups)
	}
}

func TestPatternErrors(t *testing.T) {
	bad := []string{"(", ")", "a)", "(a", "[", "[]", "*a", "+", "a\\", "[z-a]", "(a|"}
	for _, s := range bad {
		if _, err := CompilePattern(s); err == nil {
			t.Errorf("CompilePattern(%q) succeeded", s)
		}
	}
}

func TestGlob(t *testing.T) {
	// The paper's PBX partition constraint.
	g, err := Glob("+1 908-582-9*")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Like("+1 908-582-9000") {
		t.Error("glob should match managed number")
	}
	if g.Like("+1 908-583-9000") {
		t.Error("glob matched unmanaged number")
	}
	q, err := Glob("ext-????")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Like("ext-9000") || q.Like("ext-900") {
		t.Error("? glob broken")
	}
	dot, err := Glob("a.b")
	if err != nil {
		t.Fatal(err)
	}
	if dot.Like("axb") || !dot.Like("a.b") {
		t.Error("glob must escape '.'")
	}
}

func TestGlobPropertyMatchesOwnLiteral(t *testing.T) {
	f := func(s string) bool {
		s = printableSubset(s)
		g, err := Glob(s)
		if err != nil {
			return false
		}
		return g.Like(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func printableSubset(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 0x20 && r < 0x7F && r != '*' && r != '?' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func TestPatternNoCatastrophicRuntime(t *testing.T) {
	// (a*)*-style blowups are avoided by the zero-width guard; a modest
	// nested pattern must terminate quickly on a non-matching input.
	p := MustCompilePattern("(a+)+b")
	if p.Like(strings.Repeat("a", 18)) {
		t.Error("should not match without trailing b")
	}
}

func BenchmarkPatternExtension(b *testing.B) {
	p := MustCompilePattern("([0-9])-([0-9]+)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Match("5-9000"); !ok {
			b.Fatal("no match")
		}
	}
}
