package lexpress

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary source text to the mapping-language compiler.
// Mapping sources are administrator-supplied configuration (the WBA's
// mapping editor posts them verbatim), so the parser must reject garbage
// with an error — never a panic or a hang — and anything it accepts must
// produce a loadable library.
func FuzzParse(f *testing.F) {
	// The real library sources are the richest seeds.
	f.Add(PBXMappings)
	f.Add(MPMappings)
	f.Add(ClosureMappings)
	f.Add(`mapping M source "a" target "b" { key X -> y; map y = X; }`)
	f.Add(`closure C on "ldap" { derive a = b when present(c); }`)
	f.Add(`mapping M source "a" target "b" {
    map y = "lit" + group(X, "([0-9]+)", 1) ? Z;
    partition when present(X) and not present(Y);
}`)
	f.Add(`# comment only`)
	f.Add(`mapping M`)
	f.Add("mapping M source \"a\" target \"b\" { map y = X\x00; }")
	f.Fuzz(func(t *testing.T, src string) {
		lib, err := Compile(src)
		if err != nil {
			return
		}
		// Accepted sources must yield a usable library: translating through
		// every compiled mapping must not panic either.
		for _, name := range lib.Names() {
			m, ok := lib.Get(name)
			if !ok {
				t.Fatalf("Names lists %q but Get does not find it", name)
			}
			rec := NewRecord()
			rec.Set("cn", "Fuzz Person")
			rec.Set("definityExtension", "2-9000")
			_, _ = m.Translate(Descriptor{
				Source: m.Source, Op: OpModify, Key: "k",
				Old: rec, New: rec,
			})
		}
	})
}

// FuzzCompilePattern exercises the group()-pattern engine on its own: it
// runs on every translated value, so pathological patterns must fail fast.
func FuzzCompilePattern(f *testing.F) {
	f.Add(`([0-9])-([0-9]+)`, "2-9000")
	f.Add(`\+1 908 58([0-9]) ([0-9]+)`, "+1 908 582 9000")
	f.Add(`.* ([^ ]+)`, "John Doe")
	f.Add(`(((((a)))))`, "aaaaa")
	f.Fuzz(func(t *testing.T, pat, input string) {
		if len(pat) > 1024 || len(input) > 4096 {
			return // cap work per exec, not coverage
		}
		p, err := CompilePattern(pat)
		if err != nil {
			return
		}
		groups, ok := p.Match(input)
		if !ok {
			return
		}
		for i, g := range groups {
			if !strings.Contains(input, g) && g != "" {
				t.Fatalf("group %d = %q is not a substring of input %q (pattern %q)", i, g, input, pat)
			}
		}
	})
}
