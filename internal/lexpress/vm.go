package lexpress

import (
	"fmt"
	"strconv"
	"strings"
)

// value is the VM's universal value: a list of strings. Scalars are
// single-element lists; the empty list means "absent". This uniform model is
// what makes lexpress's multi-valued attribute processing compose with its
// string operations.
type value []string

func scalar(s string) value { return value{s} }

// truthy reports whether v counts as true: present with a non-empty first
// element. The VM encodes booleans as "1" / absent.
func (v value) truthy() bool { return len(v) > 0 && v[0] != "" }

func boolValue(b bool) value {
	if b {
		return scalar("1")
	}
	return nil
}

func (v value) first() (string, bool) {
	if len(v) == 0 {
		return "", false
	}
	return v[0], true
}

// vm executes compiled lexpress programs. A vm is cheap to construct; one is
// used per translation.
type vm struct {
	stack []value
}

func (m *vm) push(v value) { m.stack = append(m.stack, v) }

func (m *vm) pop() value {
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v
}

// maxSteps bounds program execution defensively (compiled programs are
// loop-free except for the jumps the compiler itself emits, so this is only
// a guard against compiler bugs).
const maxSteps = 1 << 20

// run executes prog with src as the attribute source. Stores are written to
// out; assigned tracks first-mapping-wins state across programs (the caller
// shares one map across the statement program and closure programs).
func (m *vm) run(prog *program, src Record, out Record, assigned map[string]bool) error {
	pc := 0
	steps := 0
	for {
		if steps++; steps > maxSteps {
			return fmt.Errorf("lexpress: program exceeded %d steps", maxSteps)
		}
		if pc < 0 || pc >= len(prog.code) {
			return fmt.Errorf("lexpress: pc %d out of range", pc)
		}
		in := prog.code[pc]
		pc++
		switch in.Op {
		case opHalt:
			return nil
		case opPushConst:
			m.push(scalar(prog.consts[in.A]))
		case opLoad:
			m.push(value(src.Get(prog.attrs[in.A])))
		case opConcat:
			n := in.A
			parts := make([]value, n)
			for i := n - 1; i >= 0; i-- {
				parts[i] = m.pop()
			}
			var b strings.Builder
			ok := true
			for _, p := range parts {
				s, present := p.first()
				if !present {
					ok = false
					break
				}
				b.WriteString(s)
			}
			if ok {
				m.push(scalar(b.String()))
			} else {
				m.push(nil)
			}
		case opAlt:
			n := in.A
			opts := make([]value, n)
			for i := n - 1; i >= 0; i-- {
				opts[i] = m.pop()
			}
			var chosen value
			for _, o := range opts {
				if len(o) > 0 {
					chosen = o
					break
				}
			}
			m.push(chosen)
		case opCall:
			if err := m.call(builtin(in.A), in.B); err != nil {
				return err
			}
		case opLookup:
			t := prog.tables[in.A]
			v := m.pop()
			s, present := v.first()
			if !present {
				m.push(nil)
				break
			}
			if mapped, ok := t.Entries[s]; ok {
				m.push(scalar(mapped))
			} else if t.HasDefault {
				m.push(scalar(t.Default))
			} else {
				m.push(nil) // untranslatable: absent, resiliently
			}
		case opGroup:
			p := prog.patterns[in.A]
			v := m.pop()
			s, present := v.first()
			if !present {
				m.push(nil)
				break
			}
			groups, ok := p.Match(s)
			if !ok {
				m.push(nil) // dirty data: mapping yields absent, not error
				break
			}
			m.push(scalar(groups[in.B]))
		case opStore:
			v := m.pop()
			m.store(prog.attrs[in.A], v, out, assigned)
		case opStoreN:
			n := in.B
			var all []string
			parts := make([]value, n)
			for i := n - 1; i >= 0; i-- {
				parts[i] = m.pop()
			}
			for _, p := range parts {
				all = append(all, p...)
			}
			m.store(prog.attrs[in.A], value(all), out, assigned)
		case opJmp:
			pc = in.A
		case opJmpFalse:
			if !m.pop().truthy() {
				pc = in.A
			}
		case opEq, opNe:
			r := m.pop()
			l := m.pop()
			ls, _ := l.first()
			rs, _ := r.first()
			eq := strings.EqualFold(ls, rs) && (len(l) > 0) == (len(r) > 0)
			if in.Op == opNe {
				eq = !eq
			}
			m.push(boolValue(eq))
		case opLike:
			v := m.pop()
			s, present := v.first()
			m.push(boolValue(present && prog.patterns[in.A].Like(s)))
		case opPresent:
			m.push(boolValue(src.Has(prog.attrs[in.A])))
		case opNot:
			m.push(boolValue(!m.pop().truthy()))
		default:
			return fmt.Errorf("lexpress: unknown opcode %d", in.Op)
		}
	}
}

// store implements first-mapping-wins assignment: a target attribute is set
// by the first statement that produces a value for it; later statements in
// the same translation are skipped. Absent values do not claim the slot, so
// ordered special cases and fallbacks compose naturally.
func (m *vm) store(attr string, v value, out Record, assigned map[string]bool) {
	k := canon(attr)
	if assigned[k] {
		return
	}
	// Empty strings cannot be attribute values (LDAP forbids them), so a
	// mapping that evaluates to "" leaves the attribute unclaimed — the
	// next alternate or special case may still set it.
	kept := v[:0:0]
	for _, s := range v {
		if s != "" {
			kept = append(kept, s)
		}
	}
	if len(kept) == 0 {
		return
	}
	assigned[k] = true
	out.Set(attr, kept...)
}

func (m *vm) call(fn builtin, nargs int) error {
	args := make([]value, nargs)
	for i := nargs - 1; i >= 0; i-- {
		args[i] = m.pop()
	}
	switch fn {
	case fnSubstr:
		s, ok := args[0].first()
		if !ok {
			m.push(nil)
			return nil
		}
		start, err1 := atoiValue(args[1])
		length, err2 := atoiValue(args[2])
		if err1 != nil || err2 != nil {
			m.push(nil)
			return nil
		}
		m.push(scalar(substr(s, start, length)))
	case fnLower:
		m.push(mapScalar(args[0], strings.ToLower))
	case fnUpper:
		m.push(mapScalar(args[0], strings.ToUpper))
	case fnTrim:
		m.push(mapScalar(args[0], strings.TrimSpace))
	case fnReplace:
		s, ok := args[0].first()
		if !ok {
			m.push(nil)
			return nil
		}
		old, _ := args[1].first()
		with, _ := args[2].first()
		if old == "" {
			m.push(scalar(s))
			return nil
		}
		m.push(scalar(strings.ReplaceAll(s, old, with)))
	case fnJoin:
		sep, _ := args[1].first()
		if len(args[0]) == 0 {
			m.push(nil)
			return nil
		}
		m.push(scalar(strings.Join(args[0], sep)))
	case fnSplit:
		s, ok := args[0].first()
		if !ok {
			m.push(nil)
			return nil
		}
		sep, _ := args[1].first()
		if sep == "" {
			m.push(scalar(s))
			return nil
		}
		m.push(value(strings.Split(s, sep)))
	case fnCount:
		m.push(scalar(strconv.Itoa(len(args[0]))))
	case fnFirst:
		s, ok := args[0].first()
		if !ok {
			m.push(nil)
			return nil
		}
		m.push(scalar(s))
	case fnValues:
		m.push(args[0])
	default:
		return fmt.Errorf("lexpress: unknown builtin %d", fn)
	}
	return nil
}

func mapScalar(v value, f func(string) string) value {
	if len(v) == 0 {
		return nil
	}
	out := make(value, len(v))
	for i, s := range v {
		out[i] = f(s)
	}
	return out
}

func atoiValue(v value) (int, error) {
	s, ok := v.first()
	if !ok {
		return 0, fmt.Errorf("absent numeric argument")
	}
	return strconv.Atoi(s)
}

// substr is a clamping substring: out-of-range indices yield what is there
// rather than failing (dirty-data resilience).
func substr(s string, start, length int) string {
	if start < 0 {
		start = 0
	}
	if start >= len(s) || length <= 0 {
		return ""
	}
	end := start + length
	if end > len(s) {
		end = len(s)
	}
	return s[start:end]
}

// runExpr executes an expression program and returns its value.
func runExpr(prog *program, src Record) (value, error) {
	m := &vm{}
	if err := m.run(prog, src, nil, nil); err != nil {
		return nil, err
	}
	if len(m.stack) == 0 {
		return nil, nil
	}
	return m.stack[len(m.stack)-1], nil
}

// runCond executes a condition program.
func runCond(prog *program, src Record) (bool, error) {
	v, err := runExpr(prog, src)
	if err != nil {
		return false, err
	}
	return v.truthy(), nil
}
