package lexpress

import (
	"fmt"
	"testing"
)

// evalExpr compiles a single-expression mapping and evaluates it.
func evalExpr(t *testing.T, exprSrc string, src Record) []string {
	t.Helper()
	m := compileOne(t, fmt.Sprintf(`
mapping E source "a" target "b" {
    key id -> id;
    map out = %s;
}`, exprSrc), "E")
	img, err := m.Image(src)
	if err != nil {
		t.Fatalf("eval %q: %v", exprSrc, err)
	}
	return img.Get("out")
}

func TestVMExpressionEdgeCases(t *testing.T) {
	base := Record{"id": {"1"}, "name": {"John"}, "empty": {""}, "multi": {"a", "b"}}
	cases := []struct {
		expr string
		want []string
	}{
		// substr clamping on all edges.
		{`substr(name, 0, 99)`, []string{"John"}},
		{`substr(name, 2, 0)`, nil},
		{`substr(name, 0, 2)`, []string{"Jo"}},
		// lower/upper/trim on multi-valued input map element-wise.
		{`lower(multi)`, []string{"a", "b"}},
		// replace with empty old is identity.
		{`replace(name, "", "X")`, []string{"John"}},
		{`replace(name, "o", "0")`, []string{"J0hn"}},
		// join/split round trips.
		{`join(values(multi), "|")`, []string{"a|b"}},
		{`split("x;y;z", ";")`, []string{"x", "y", "z"}},
		{`split(name, "")`, []string{"John"}},
		// count/first.
		{`count(values(multi))`, []string{"2"}},
		{`first(values(multi))`, []string{"a"}},
		// concat with an absent part is absent (no half-built values).
		{`"pre-" + missing`, nil},
		{`"pre-" + name`, []string{"pre-John"}},
		// alternates pick the first present option.
		{`missing ? name ? "fallback"`, []string{"John"}},
		{`missing ? alsoMissing ? "fallback"`, []string{"fallback"}},
		// group on non-matching input is absent, not an error.
		{`group(name, "([0-9]+)", 1)`, nil},
		{`group(name, "(Jo)(hn)", 2)`, []string{"hn"}},
		// group index 0 is the whole match.
		{`group(name, "J.*", 0)`, []string{"John"}},
	}
	for _, c := range cases {
		got := evalExpr(t, c.expr, base)
		if len(got) != len(c.want) {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s = %v, want %v", c.expr, got, c.want)
				break
			}
		}
	}
}

func TestVMNumericArgumentErrorsAreAbsent(t *testing.T) {
	// substr with a non-numeric index argument yields absent (dirty data),
	// not a runtime error.
	got := evalExpr(t, `substr(name, bad, 2)`, Record{"id": {"1"}, "name": {"John"}, "bad": {"NaN"}})
	if got != nil {
		t.Errorf("got %v", got)
	}
}

func TestVMEmptyStringsNeverStored(t *testing.T) {
	m := compileOne(t, `
mapping E source "a" target "b" {
    key id -> id;
    map out = trim(pad);
    map out = "fallback";
}`, "E")
	// trim yields "" -> first mapping does not claim the slot, the ordered
	// fallback does.
	img, err := m.Image(Record{"id": {"1"}, "pad": {"   "}})
	if err != nil {
		t.Fatal(err)
	}
	if img.First("out") != "fallback" {
		t.Errorf("out = %q", img.First("out"))
	}
}

func TestVMSetBuildsMultiValues(t *testing.T) {
	m := compileOne(t, `
mapping E source "a" target "b" {
    key id -> id;
    set out = "one", values(multi), upper(name);
}`, "E")
	img, err := m.Image(Record{"id": {"1"}, "multi": {"a", "b"}, "name": {"x"}})
	if err != nil {
		t.Fatal(err)
	}
	got := img.Get("out")
	want := []string{"one", "a", "b", "X"}
	if len(got) != len(want) {
		t.Fatalf("out = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out = %v, want %v", got, want)
		}
	}
}

func TestVMConditionEqualityIsCaseInsensitive(t *testing.T) {
	m := compileOne(t, `
mapping E source "a" target "b" {
    key id -> id;
    when name == "JOHN" map out = "matched";
}`, "E")
	img, err := m.Image(Record{"id": {"1"}, "name": {"john"}})
	if err != nil {
		t.Fatal(err)
	}
	if img.First("out") != "matched" {
		t.Error("case-insensitive == failed")
	}
}

func TestVMAbsentComparesUnequalToEmpty(t *testing.T) {
	m := compileOne(t, `
mapping E source "a" target "b" {
    key id -> id;
    when missing == "" map out = "absent-eq-empty";
}`, "E")
	img, err := m.Image(Record{"id": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	// An absent attribute is not equal to the empty string: present/absent
	// is part of equality.
	if img.Has("out") {
		t.Error("absent attribute compared equal to empty string")
	}
}
