// Package lexpress implements the schema translation and integration
// language of MetaComm (paper §4.2 and the cited technical report
// "Mapping updates for heterogeneous data repositories").
//
// lexpress consists of:
//
//   - a declarative language for specifying the relationship between two
//     schemas (string operations, table translations, alternate attribute
//     mappings, multi-valued attribute processing, pattern matching);
//   - a compiler that generates machine-independent byte code;
//   - an interpreter (a small stack VM) for executing the byte codes.
//
// On top of the per-pair mappings the package provides the transitive
// closure of attribute dependencies with the paper's first-mapping-wins
// conflict resolution, partitioning constraints that route updates as
// add/modify/delete/skip per target, and conditional (reapplied) update
// detection via the Originator mapping characteristic.
//
// This file implements the pattern matcher used by `match`/`like`: a small
// backtracking engine supporting literals, '.', character classes
// ([a-z0-9], negation), the postfix operators '*', '+', '?', capturing
// groups and alternation. Patterns let mappings stay resilient against
// dirty data and be refined incrementally with special cases.
package lexpress

import (
	"errors"
	"fmt"
)

// Pattern is a compiled lexpress pattern.
type Pattern struct {
	src  string
	root []pnode
	// groups is the number of capturing groups.
	groups int
}

type pkind int

const (
	pLiteral pkind = iota // single byte
	pAny                  // .
	pClass                // [...]
	pGroup                // ( alt | alt )
)

type pnode struct {
	kind pkind
	ch   byte
	// class
	negate bool
	ranges [][2]byte
	// group
	alts  [][]pnode
	index int // capture index (1-based)
	// repetition: 0 = exactly once, '*', '+', '?'
	rep byte
}

// CompilePattern parses a pattern string.
func CompilePattern(src string) (*Pattern, error) {
	p := &patternParser{src: src}
	nodes, err := p.parseAlt(false)
	if err != nil {
		return nil, fmt.Errorf("lexpress: pattern %q: %v", src, err)
	}
	if p.pos != len(src) {
		return nil, fmt.Errorf("lexpress: pattern %q: unexpected %q", src, src[p.pos:])
	}
	return &Pattern{src: src, root: nodes, groups: p.groups}, nil
}

// MustCompilePattern panics on error; for literals in the mapping library.
func MustCompilePattern(src string) *Pattern {
	p, err := CompilePattern(src)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the pattern source.
func (p *Pattern) String() string { return p.src }

// Groups returns the number of capturing groups.
func (p *Pattern) Groups() int { return p.groups }

type patternParser struct {
	src    string
	pos    int
	groups int
}

func (p *patternParser) parseAlt(inGroup bool) ([]pnode, error) {
	// A sequence; alternation handled at group level. The top level is an
	// implicit group without capture.
	var seq []pnode
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case ')', '|':
			if !inGroup {
				return nil, fmt.Errorf("unexpected %q", string(c))
			}
			return seq, nil
		case '(':
			p.pos++
			p.groups++
			g := pnode{kind: pGroup, index: p.groups}
			for {
				alt, err := p.parseAlt(true)
				if err != nil {
					return nil, err
				}
				g.alts = append(g.alts, alt)
				if p.pos >= len(p.src) {
					return nil, errors.New("unterminated group")
				}
				if p.src[p.pos] == '|' {
					p.pos++
					continue
				}
				break
			}
			p.pos++ // consume ')'
			seq = append(seq, p.withRep(g))
		case '[':
			n, err := p.parseClass()
			if err != nil {
				return nil, err
			}
			seq = append(seq, p.withRep(n))
		case '.':
			p.pos++
			seq = append(seq, p.withRep(pnode{kind: pAny}))
		case '*', '+', '?':
			return nil, fmt.Errorf("dangling %q", string(c))
		case '\\':
			if p.pos+1 >= len(p.src) {
				return nil, errors.New("trailing backslash")
			}
			p.pos += 2
			seq = append(seq, p.withRep(pnode{kind: pLiteral, ch: p.src[p.pos-1]}))
		default:
			p.pos++
			seq = append(seq, p.withRep(pnode{kind: pLiteral, ch: c}))
		}
	}
	if inGroup {
		return nil, errors.New("unterminated group")
	}
	return seq, nil
}

func (p *patternParser) withRep(n pnode) pnode {
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '*', '+', '?':
			n.rep = p.src[p.pos]
			p.pos++
		}
	}
	return n
}

func (p *patternParser) parseClass() (pnode, error) {
	p.pos++ // consume '['
	n := pnode{kind: pClass}
	if p.pos < len(p.src) && p.src[p.pos] == '^' {
		n.negate = true
		p.pos++
	}
	for {
		if p.pos >= len(p.src) {
			return n, errors.New("unterminated class")
		}
		c := p.src[p.pos]
		if c == ']' && len(n.ranges) > 0 {
			p.pos++
			return n, nil
		}
		if c == '\\' {
			if p.pos+1 >= len(p.src) {
				return n, errors.New("trailing backslash in class")
			}
			p.pos++
			c = p.src[p.pos]
		}
		p.pos++
		lo, hi := c, c
		if p.pos+1 < len(p.src) && p.src[p.pos] == '-' && p.src[p.pos+1] != ']' {
			hi = p.src[p.pos+1]
			p.pos += 2
			if hi < lo {
				return n, fmt.Errorf("inverted range %c-%c", lo, hi)
			}
		}
		n.ranges = append(n.ranges, [2]byte{lo, hi})
	}
}

func (n *pnode) matchClass(c byte) bool {
	in := false
	for _, r := range n.ranges {
		if c >= r[0] && c <= r[1] {
			in = true
			break
		}
	}
	return in != n.negate
}

// Match tests whether the whole input matches and returns the captured
// groups. groups[0] is the full match; groups[i] the i-th group ("" when
// unmatched).
func (p *Pattern) Match(s string) (groups []string, ok bool) {
	caps := make([][2]int, p.groups+1)
	for i := range caps {
		caps[i] = [2]int{-1, -1}
	}
	if !matchSeq(p.root, s, 0, caps, func(pos int) bool { return pos == len(s) }) {
		return nil, false
	}
	out := make([]string, p.groups+1)
	out[0] = s
	for i := 1; i <= p.groups; i++ {
		if caps[i][0] >= 0 {
			out[i] = s[caps[i][0]:caps[i][1]]
		}
	}
	return out, true
}

// Like reports whether the whole input matches (no captures needed).
func (p *Pattern) Like(s string) bool {
	_, ok := p.Match(s)
	return ok
}

// matchSeq matches nodes against s starting at pos; k is the continuation.
func matchSeq(nodes []pnode, s string, pos int, caps [][2]int, k func(int) bool) bool {
	if len(nodes) == 0 {
		return k(pos)
	}
	n := &nodes[0]
	rest := nodes[1:]
	cont := func(p int) bool { return matchSeq(rest, s, p, caps, k) }
	switch n.rep {
	case 0:
		return matchOne(n, s, pos, caps, cont)
	case '?':
		// Greedy: try one occurrence, then zero.
		if matchOne(n, s, pos, caps, cont) {
			return true
		}
		return cont(pos)
	case '*', '+':
		min := 0
		if n.rep == '+' {
			min = 1
		}
		var rec func(count, p int) bool
		rec = func(count, p int) bool {
			// Greedy: attempt to consume more first.
			if matchOne(n, s, p, caps, func(np int) bool {
				if np == p {
					return false // zero-width: stop expanding
				}
				return rec(count+1, np)
			}) {
				return true
			}
			if count >= min {
				return cont(p)
			}
			return false
		}
		return rec(0, pos)
	}
	return false
}

func matchOne(n *pnode, s string, pos int, caps [][2]int, k func(int) bool) bool {
	switch n.kind {
	case pLiteral:
		if pos < len(s) && s[pos] == n.ch {
			return k(pos + 1)
		}
	case pAny:
		if pos < len(s) {
			return k(pos + 1)
		}
	case pClass:
		if pos < len(s) && n.matchClass(s[pos]) {
			return k(pos + 1)
		}
	case pGroup:
		saved := caps[n.index]
		for _, alt := range n.alts {
			if matchSeq(alt, s, pos, caps, func(np int) bool {
				prev := caps[n.index]
				caps[n.index] = [2]int{pos, np}
				if k(np) {
					return true
				}
				caps[n.index] = prev
				return false
			}) {
				return true
			}
		}
		caps[n.index] = saved
	}
	return false
}

// Glob compiles a shell-style glob ('*' any run, '?' one char) into a
// Pattern; globs are the surface syntax of `like` partition constraints,
// e.g. "+1 908-582-9*" (paper §4.2).
func Glob(glob string) (*Pattern, error) {
	var out []byte
	for i := 0; i < len(glob); i++ {
		switch c := glob[i]; c {
		case '*':
			out = append(out, '.', '*')
		case '?':
			out = append(out, '.')
		case '.', '[', ']', '(', ')', '+', '\\', '|':
			out = append(out, '\\', c)
		default:
			out = append(out, c)
		}
	}
	return CompilePattern(string(out))
}
