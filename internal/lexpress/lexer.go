package lexpress

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds of the lexpress language.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString // "..." with backslash escapes
	tokNumber // integer literal
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokSemi
	tokComma
	tokEq    // =
	tokEqEq  // ==
	tokNotEq // !=
	tokArrow // ->
	tokPlus  // +
	tokQuery // ?
)

var tokNames = map[tokKind]string{
	tokEOF: "end of input", tokIdent: "identifier", tokString: "string",
	tokNumber: "number", tokLBrace: "'{'", tokRBrace: "'}'",
	tokLParen: "'('", tokRParen: "')'", tokSemi: "';'", tokComma: "','",
	tokEq: "'='", tokEqEq: "'=='", tokNotEq: "'!='", tokArrow: "'->'",
	tokPlus: "'+'", tokQuery: "'?'",
}

func (k tokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind tokKind
	text string
	line int
}

// lexer tokenizes lexpress source. '#' and '//' start line comments.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("lexpress: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			return l.lexToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) lexToken() (token, error) {
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case c == '"':
		return l.lexString()
	}
	l.pos++
	switch c {
	case '{':
		return token{kind: tokLBrace, line: l.line}, nil
	case '}':
		return token{kind: tokRBrace, line: l.line}, nil
	case '(':
		return token{kind: tokLParen, line: l.line}, nil
	case ')':
		return token{kind: tokRParen, line: l.line}, nil
	case ';':
		return token{kind: tokSemi, line: l.line}, nil
	case ',':
		return token{kind: tokComma, line: l.line}, nil
	case '+':
		return token{kind: tokPlus, line: l.line}, nil
	case '?':
		return token{kind: tokQuery, line: l.line}, nil
	case '=':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokEqEq, line: l.line}, nil
		}
		return token{kind: tokEq, line: l.line}, nil
	case '!':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokNotEq, line: l.line}, nil
		}
		return token{}, l.errf("unexpected '!'")
	case '-':
		if l.pos < len(l.src) && l.src[l.pos] == '>' {
			l.pos++
			return token{kind: tokArrow, line: l.line}, nil
		}
		return token{}, l.errf("unexpected '-'")
	}
	return token{}, l.errf("unexpected character %q", string(c))
}

func (l *lexer) lexString() (token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{kind: tokString, text: b.String(), line: l.line}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("unterminated string escape")
			}
			l.pos++
			switch e := l.src[l.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(e)
			default:
				return token{}, l.errf("unknown string escape \\%c", e)
			}
			l.pos++
		case '\n':
			return token{}, l.errf("unterminated string")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf("unterminated string")
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.'
}
