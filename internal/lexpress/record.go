package lexpress

import (
	"fmt"
	"sort"
	"strings"
)

// Record is the canonical representation of a repository record inside
// lexpress: a case-insensitive map from attribute name to values. Scalar
// attributes are single-element slices; lexpress's multi-valued attribute
// processing operates on the full slices.
type Record map[string][]string

// NewRecord returns an empty record.
func NewRecord() Record { return Record{} }

func canon(attr string) string { return strings.ToLower(attr) }

// Get returns all values of attr.
func (r Record) Get(attr string) []string { return r[canon(attr)] }

// First returns the first value of attr, or "".
func (r Record) First(attr string) string {
	if vs := r[canon(attr)]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// Set replaces the values of attr. Empty values removes the attribute.
func (r Record) Set(attr string, values ...string) {
	k := canon(attr)
	if len(values) == 0 {
		delete(r, k)
		return
	}
	r[k] = append([]string(nil), values...)
}

// Has reports whether attr has at least one value.
func (r Record) Has(attr string) bool { return len(r[canon(attr)]) > 0 }

// Clone deep-copies the record.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	for k, vs := range r {
		out[k] = append([]string(nil), vs...)
	}
	return out
}

// Attrs returns the attribute names present, sorted.
func (r Record) Attrs() []string {
	out := make([]string, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equal reports value-set equality per attribute (order-insensitive).
func (r Record) Equal(o Record) bool {
	if len(r) != len(o) {
		return false
	}
	for k, vs := range r {
		ws, ok := o[k]
		if !ok || len(vs) != len(ws) {
			return false
		}
		seen := make(map[string]int, len(ws))
		for _, w := range ws {
			seen[w]++
		}
		for _, v := range vs {
			if seen[v] == 0 {
				return false
			}
			seen[v]--
		}
	}
	return true
}

// String renders the record compactly for logs.
func (r Record) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range r.Attrs() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%v", k, r[k])
	}
	b.WriteByte('}')
	return b.String()
}

// OpKind is the kind of a canonical update.
type OpKind int

// Update kinds.
const (
	OpAdd OpKind = iota
	OpModify
	OpDelete
)

func (o OpKind) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpModify:
		return "modify"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Descriptor is the lexpress update descriptor: the canonical form in which
// every filter reports a change to the Update Manager (paper §4.1). Old and
// New are images of the record before and after the change in the *source*
// repository's schema.
type Descriptor struct {
	// Source names the repository the update originated at ("ldap", "pbx",
	// "msgplat", ...).
	Source string
	// Origin names the repository where the update FIRST entered the
	// system. For a direct device update propagated via LDAP back toward
	// devices, Origin remains the device, which is what conditional-update
	// detection keys on. Empty means Source.
	Origin string
	Op     OpKind
	// Key identifies the record in the source schema.
	Key string
	Old Record
	New Record
	// Explicit lists attributes the client set explicitly in this update;
	// the transitive closure never overwrites them (paper §4.2 conflict
	// resolution). Empty means "all attributes present in New".
	Explicit []string
	// Seq is a serialization stamp assigned by the Update Manager queue.
	Seq uint64
}

// OriginName returns Origin, defaulting to Source.
func (d Descriptor) OriginName() string {
	if d.Origin != "" {
		return d.Origin
	}
	return d.Source
}

// TargetUpdate is the result of translating a Descriptor through a mapping:
// one update to apply against the mapping's target repository.
type TargetUpdate struct {
	Target string
	Op     OpKind
	// Conditional marks a reapplied update (the target is the update's
	// origin, paper §5.4): apply with recovery semantics — a conditional
	// modify that fails is retried as an add; a conditional add that hits
	// "already exists" is retried as a modify; a conditional delete that
	// finds nothing is a no-op.
	Conditional bool
	// Key/OldKey are the record keys after/before the update in the target
	// schema. A key change surfaces as OldKey != Key.
	Key    string
	OldKey string
	Old    Record
	New    Record
	// Owned lists the target-owned attributes declared by the mapping that
	// produced this update ("owns" statement); a delete clears exactly
	// these from the counterpart entry.
	Owned []string
}

func (u *TargetUpdate) String() string {
	cond := ""
	if u.Conditional {
		cond = " (conditional)"
	}
	return fmt.Sprintf("%s %s key=%q%s", u.Target, u.Op, u.Key, cond)
}
