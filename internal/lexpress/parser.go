package lexpress

import (
	"fmt"
	"strconv"
)

// parser builds mappingASTs from tokens.
type parser struct {
	lx   *lexer
	tok  token
	err  error
	peek *token
}

func newParser(src string) (*parser, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok, p.peek = *p.peek, nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("lexpress: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %s, got %s %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) keyword(word string) error {
	if p.tok.kind != tokIdent || p.tok.text != word {
		return p.errf("expected %q, got %q", word, p.tok.text)
	}
	return p.advance()
}

func (p *parser) atKeyword(word string) bool {
	return p.tok.kind == tokIdent && p.tok.text == word
}

// parseUnit parses zero or more mappings until EOF.
func (p *parser) parseUnit() ([]*mappingAST, error) {
	var out []*mappingAST
	for p.tok.kind != tokEOF {
		m, err := p.parseMapping()
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// parseMapping parses:
//
//	mapping Name source "src" target "dst" { stmts }
func (p *parser) parseMapping() (*mappingAST, error) {
	if err := p.keyword("mapping"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.keyword("source"); err != nil {
		return nil, err
	}
	src, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	if err := p.keyword("target"); err != nil {
		return nil, err
	}
	dst, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	m := &mappingAST{Name: name.text, Source: src.text, Target: dst.text, Tables: map[string]*tableDef{}}
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return nil, p.errf("unterminated mapping %q", m.Name)
		}
		if err := p.parseStmt(m); err != nil {
			return nil, err
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if m.KeySrc == "" {
		return nil, fmt.Errorf("lexpress: mapping %q has no key statement", m.Name)
	}
	return m, nil
}

func (p *parser) parseStmt(m *mappingAST) error {
	if p.tok.kind != tokIdent {
		return p.errf("expected statement keyword, got %s", p.tok.kind)
	}
	switch p.tok.text {
	case "key":
		return p.parseKey(m)
	case "table":
		return p.parseTable(m)
	case "map", "set":
		s, err := p.parseMapOrSet(nil)
		if err != nil {
			return err
		}
		m.Stmts = append(m.Stmts, s)
		return nil
	case "when":
		return p.parseWhen(m)
	case "derive":
		return p.parseDerive(m)
	case "partition":
		return p.parsePartition(m)
	case "originator":
		return p.parseOriginator(m)
	case "owns":
		return p.parseOwns(m)
	}
	return p.errf("unknown statement %q", p.tok.text)
}

func (p *parser) parseKey(m *mappingAST) error {
	if err := p.advance(); err != nil {
		return err
	}
	src, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return err
	}
	dst, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if m.KeySrc != "" {
		return p.errf("duplicate key statement")
	}
	m.KeySrc, m.KeyDst = src.text, dst.text
	return nil
}

func (p *parser) parseTable(m *mappingAST) error {
	if err := p.advance(); err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	t := &tableDef{Name: name.text, Entries: map[string]string{}}
	for p.tok.kind != tokRBrace {
		if p.atKeyword("default") {
			if err := p.advance(); err != nil {
				return err
			}
			if _, err := p.expect(tokArrow); err != nil {
				return err
			}
			v, err := p.expect(tokString)
			if err != nil {
				return err
			}
			if t.HasDefault {
				return p.errf("duplicate default in table %q", t.Name)
			}
			t.Default, t.HasDefault = v.text, true
		} else {
			k, err := p.expect(tokString)
			if err != nil {
				return err
			}
			if _, err := p.expect(tokArrow); err != nil {
				return err
			}
			v, err := p.expect(tokString)
			if err != nil {
				return err
			}
			if _, dup := t.Entries[k.text]; dup {
				return p.errf("duplicate table key %q", k.text)
			}
			t.Entries[k.text] = v.text
		}
		if _, err := p.expect(tokSemi); err != nil {
			return err
		}
	}
	if err := p.advance(); err != nil { // '}'
		return err
	}
	if _, dup := m.Tables[t.Name]; dup {
		return p.errf("duplicate table %q", t.Name)
	}
	m.Tables[t.Name] = t
	return nil
}

func (p *parser) parseMapOrSet(guard cond) (stmt, error) {
	isSet := p.tok.text == "set"
	if err := p.advance(); err != nil {
		return nil, err
	}
	dst, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEq); err != nil {
		return nil, err
	}
	if isSet {
		var es []expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			es = append(es, e)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return setStmt{Dst: dst.text, Es: es, Guard: guard}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return mapStmt{Dst: dst.text, E: e, Guard: guard}, nil
}

// parseWhen parses `when cond map|set ...;` or `when cond { map|set ... }`.
func (p *parser) parseWhen(m *mappingAST) error {
	if err := p.advance(); err != nil {
		return err
	}
	c, err := p.parseCond()
	if err != nil {
		return err
	}
	if p.tok.kind == tokLBrace {
		if err := p.advance(); err != nil {
			return err
		}
		for p.tok.kind != tokRBrace {
			if !p.atKeyword("map") && !p.atKeyword("set") {
				return p.errf("only map/set allowed inside when block")
			}
			s, err := p.parseMapOrSet(c)
			if err != nil {
				return err
			}
			m.Stmts = append(m.Stmts, s)
		}
		return p.advance()
	}
	if !p.atKeyword("map") && !p.atKeyword("set") {
		return p.errf("expected map/set after when condition")
	}
	s, err := p.parseMapOrSet(c)
	if err != nil {
		return err
	}
	m.Stmts = append(m.Stmts, s)
	return nil
}

func (p *parser) parseDerive(m *mappingAST) error {
	if err := p.advance(); err != nil {
		return err
	}
	dst, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokEq); err != nil {
		return err
	}
	e, err := p.parseExpr()
	if err != nil {
		return err
	}
	var guard cond
	if p.atKeyword("when") {
		if err := p.advance(); err != nil {
			return err
		}
		if guard, err = p.parseCond(); err != nil {
			return err
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	m.Derives = append(m.Derives, deriveStmt{Dst: dst.text, E: e, Guard: guard})
	return nil
}

// parseOwns parses `owns attr, attr, ...;`
func (p *parser) parseOwns(m *mappingAST) error {
	if err := p.advance(); err != nil {
		return err
	}
	for {
		attr, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		m.Owns = append(m.Owns, attr.text)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
	_, err := p.expect(tokSemi)
	return err
}

func (p *parser) parsePartition(m *mappingAST) error {
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.keyword("when"); err != nil {
		return err
	}
	c, err := p.parseCond()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if m.Partition != nil {
		return p.errf("duplicate partition constraint")
	}
	m.Partition = c
	return nil
}

func (p *parser) parseOriginator(m *mappingAST) error {
	if err := p.advance(); err != nil {
		return err
	}
	attr, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if m.Originator != "" {
		return p.errf("duplicate originator")
	}
	m.Originator = attr.text
	return nil
}

// --- expressions ---

func (p *parser) parseExpr() (expr, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokQuery {
		return first, nil
	}
	alt := altExpr{Options: []expr{first}}
	for p.tok.kind == tokQuery {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alt.Options = append(alt.Options, next)
	}
	return alt, nil
}

func (p *parser) parseConcat() (expr, error) {
	first, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokPlus {
		return first, nil
	}
	c := concatExpr{Parts: []expr{first}}
	for p.tok.kind == tokPlus {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		c.Parts = append(c.Parts, next)
	}
	return c, nil
}

func (p *parser) parsePrimary() (expr, error) {
	switch p.tok.kind {
	case tokString:
		v := p.tok.text
		return strLit{Val: v}, p.advance()
	case tokNumber:
		n, err := strconv.Atoi(p.tok.text)
		if err != nil {
			return nil, p.errf("bad number %q", p.tok.text)
		}
		return numLit{Val: n}, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		name := p.tok.text
		nxt, err := p.peekTok()
		if err != nil {
			return nil, err
		}
		if nxt.kind != tokLParen {
			return attrRef{Name: name}, p.advance()
		}
		// function call
		if err := p.advance(); err != nil { // name
			return nil, err
		}
		if err := p.advance(); err != nil { // '('
			return nil, err
		}
		call := callExpr{Fn: name}
		if p.tok.kind != tokRParen {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return call, nil
	}
	return nil, p.errf("expected expression, got %s", p.tok.kind)
}

// --- conditions ---

func (p *parser) parseCond() (cond, error) {
	l, err := p.parseAndCond()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAndCond()
		if err != nil {
			return nil, err
		}
		l = orCond{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAndCond() (cond, error) {
	l, err := p.parseNotCond()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseNotCond()
		if err != nil {
			return nil, err
		}
		l = andCond{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNotCond() (cond, error) {
	if p.atKeyword("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		c, err := p.parseNotCond()
		if err != nil {
			return nil, err
		}
		return notCond{C: c}, nil
	}
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return c, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (cond, error) {
	if p.atKeyword("present") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		attr, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return presentCond{Attr: attr.text}, nil
	}
	l, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	switch {
	case p.tok.kind == tokEqEq, p.tok.kind == tokNotEq:
		ne := p.tok.kind == tokNotEq
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		return cmpCond{NE: ne, L: l, R: r}, nil
	case p.atKeyword("like"), p.atKeyword("matches"):
		isMatch := p.tok.text == "matches"
		if err := p.advance(); err != nil {
			return nil, err
		}
		pat, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		return likeCond{E: l, Pat: pat.text, IsMatch: isMatch}, nil
	}
	return nil, p.errf("expected ==, !=, like or matches in condition")
}

// ParseUnit parses lexpress source into its mappings (exported for the lexc
// tool's syntax-check mode; most callers use Compile).
func ParseUnit(src string) (names []string, err error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	ms, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		names = append(names, m.Name)
	}
	return names, nil
}
