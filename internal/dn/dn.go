// Package dn parses, normalizes and compares LDAP distinguished names.
//
// A distinguished name (DN) identifies an entry as the path from the entry
// to the root of the directory tree, e.g. "cn=John Doe, o=Marketing,
// o=Lucent" (leaf first, per RFC 2253 — the reverse of URL/file order). Each
// path component is a relative distinguished name (RDN): one or more
// attribute=value pairs joined by '+'.
//
// Comparison in LDAP is case-insensitive on attribute types and (for the
// directory strings used here) values, so the package provides a canonical
// normalized form used as the map key throughout the directory backend.
package dn

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// AVA is a single attribute/value assertion within an RDN.
type AVA struct {
	Attr  string
	Value string
}

// RDN is a relative distinguished name: one AVA, or several joined by '+'.
type RDN []AVA

// DN is a distinguished name, leaf RDN first.
type DN []RDN

// ErrEmpty reports an empty DN where a non-empty one is required.
var ErrEmpty = errors.New("dn: empty DN")

// Parse parses an RFC 2253-style string representation of a DN. The empty
// string parses to the zero-length DN (the root).
func Parse(s string) (DN, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return DN{}, nil
	}
	var d DN
	for _, rdnStr := range splitUnescaped(s, ',') {
		rdn, err := parseRDN(rdnStr)
		if err != nil {
			return nil, err
		}
		d = append(d, rdn)
	}
	return d, nil
}

// MustParse is Parse for known-good literals; it panics on error.
func MustParse(s string) DN {
	d, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return d
}

func parseRDN(s string) (RDN, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, errors.New("dn: empty RDN component")
	}
	var rdn RDN
	for _, avaStr := range splitUnescaped(s, '+') {
		ava, err := parseAVA(avaStr)
		if err != nil {
			return nil, err
		}
		rdn = append(rdn, ava)
	}
	return rdn, nil
}

func parseAVA(s string) (AVA, error) {
	s = strings.TrimSpace(s)
	i := indexUnescaped(s, '=')
	if i < 0 {
		return AVA{}, fmt.Errorf("dn: %q: missing '='", s)
	}
	attr := strings.TrimSpace(s[:i])
	if attr == "" {
		return AVA{}, fmt.Errorf("dn: %q: empty attribute type", s)
	}
	if !validAttrType(attr) {
		return AVA{}, fmt.Errorf("dn: %q: invalid attribute type %q", s, attr)
	}
	val, err := unescape(strings.TrimSpace(s[i+1:]))
	if err != nil {
		return AVA{}, fmt.Errorf("dn: %q: %v", s, err)
	}
	return AVA{Attr: attr, Value: val}, nil
}

func validAttrType(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9', r == '-', r == '.':
			if i == 0 && r == '-' {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitUnescaped splits on sep, honoring backslash escapes.
func splitUnescaped(s string, sep byte) []string {
	var out []string
	start := 0
	escaped := false
	for i := 0; i < len(s); i++ {
		switch {
		case escaped:
			escaped = false
		case s[i] == '\\':
			escaped = true
		case s[i] == sep:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func indexUnescaped(s string, sep byte) int {
	escaped := false
	for i := 0; i < len(s); i++ {
		switch {
		case escaped:
			escaped = false
		case s[i] == '\\':
			escaped = true
		case s[i] == sep:
			return i
		}
	}
	return -1
}

func unescape(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", errors.New("dn: trailing backslash")
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}

// escapeValue escapes characters that are special in DN strings.
func escapeValue(v string) string {
	if !strings.ContainsAny(v, ",+=\\#;<>\"") && !strings.HasPrefix(v, " ") && !strings.HasSuffix(v, " ") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case ',', '+', '=', '\\', '#', ';', '<', '>', '"':
			b.WriteByte('\\')
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// String renders the AVA with escaping.
func (a AVA) String() string { return a.Attr + "=" + escapeValue(a.Value) }

// String renders the RDN with '+' joining multiple AVAs.
func (r RDN) String() string {
	parts := make([]string, len(r))
	for i, a := range r {
		parts[i] = a.String()
	}
	return strings.Join(parts, "+")
}

// String renders the DN in RFC 2253 form (leaf first, comma separated).
func (d DN) String() string {
	parts := make([]string, len(d))
	for i, r := range d {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// normalizeRDN lowercases attrs and values and sorts multi-AVA RDNs so that
// equal RDNs normalize identically regardless of AVA order.
func normalizeRDN(r RDN) string {
	parts := make([]string, len(r))
	for i, a := range r {
		parts[i] = strings.ToLower(a.Attr) + "=" + strings.ToLower(escapeValue(normSpace(a.Value)))
	}
	sort.Strings(parts)
	return strings.Join(parts, "+")
}

func normSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// Normalize returns the canonical comparison key for d.
func (d DN) Normalize() string {
	parts := make([]string, len(d))
	for i, r := range d {
		parts[i] = normalizeRDN(r)
	}
	return strings.Join(parts, ",")
}

// Equal reports whether two DNs name the same entry.
func (d DN) Equal(o DN) bool { return d.Normalize() == o.Normalize() }

// IsRoot reports whether d is the zero-length root DN.
func (d DN) IsRoot() bool { return len(d) == 0 }

// RDN returns the leaf RDN. It panics on the root DN.
func (d DN) RDN() RDN { return d[0] }

// Parent returns the DN of the parent entry, or the root DN for a
// single-RDN name.
func (d DN) Parent() DN {
	if len(d) == 0 {
		return DN{}
	}
	return d[1:]
}

// Depth returns the number of RDN components.
func (d DN) Depth() int { return len(d) }

// Child returns the DN of a child of d with the given leaf RDN.
func (d DN) Child(r RDN) DN {
	out := make(DN, 0, len(d)+1)
	out = append(out, r)
	return append(out, d...)
}

// IsDescendantOf reports whether d lies strictly below ancestor.
func (d DN) IsDescendantOf(ancestor DN) bool {
	if len(d) <= len(ancestor) {
		return false
	}
	return DN(d[len(d)-len(ancestor):]).Normalize() == ancestor.Normalize()
}

// WithRDN returns a copy of d with the leaf RDN replaced (the effect of a
// ModifyRDN operation). It panics on the root DN.
func (d DN) WithRDN(r RDN) DN {
	out := make(DN, len(d))
	copy(out, d)
	out[0] = r
	return out
}

// FirstValue returns the value of the first AVA in the leaf RDN whose
// attribute type matches attr (case-insensitively), or "".
func (d DN) FirstValue(attr string) string {
	if len(d) == 0 {
		return ""
	}
	for _, a := range d[0] {
		if strings.EqualFold(a.Attr, attr) {
			return a.Value
		}
	}
	return ""
}
