package dn

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePaperExample(t *testing.T) {
	// The DN from the paper's Figure 2.
	d, err := Parse("cn=John Doe, o=Marketing, o=Lucent")
	if err != nil {
		t.Fatal(err)
	}
	if d.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", d.Depth())
	}
	if got := d.RDN().String(); got != "cn=John Doe" {
		t.Errorf("leaf RDN = %q", got)
	}
	if got := d.Parent().String(); got != "o=Marketing,o=Lucent" {
		t.Errorf("parent = %q", got)
	}
	if d.FirstValue("CN") != "John Doe" {
		t.Errorf("FirstValue(CN) = %q", d.FirstValue("CN"))
	}
}

func TestEqualIsCaseAndSpaceInsensitive(t *testing.T) {
	a := MustParse("CN=John  Doe,O=Marketing , o=LUCENT")
	b := MustParse("cn=john doe,o=marketing,o=lucent")
	if !a.Equal(b) {
		t.Errorf("%q != %q", a.Normalize(), b.Normalize())
	}
}

func TestMultiValuedRDN(t *testing.T) {
	a := MustParse("cn=Pat Smith+uid=ps01,o=Lucent")
	b := MustParse("uid=ps01+cn=Pat Smith,o=Lucent")
	if !a.Equal(b) {
		t.Error("AVA order should not affect equality")
	}
	if len(a.RDN()) != 2 {
		t.Fatalf("leaf AVAs = %d, want 2", len(a.RDN()))
	}
}

func TestEscaping(t *testing.T) {
	d, err := Parse(`cn=Doe\, John,o=Lucent`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", d.Depth())
	}
	if got := d.RDN()[0].Value; got != "Doe, John" {
		t.Errorf("value = %q", got)
	}
	// Round-trip through String must re-escape.
	rt, err := Parse(d.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", d.String(), err)
	}
	if !rt.Equal(d) {
		t.Errorf("round trip changed DN: %q -> %q", d.Normalize(), rt.Normalize())
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	// Values drawn from printable strings incl. special characters must
	// survive String() -> Parse().
	f := func(name, org string) bool {
		name = printable(name)
		org = printable(org)
		if strings.TrimSpace(name) == "" || strings.TrimSpace(org) == "" {
			return true
		}
		d := DN{RDN{{Attr: "cn", Value: name}}, RDN{{Attr: "o", Value: org}}}
		rt, err := Parse(d.String())
		if err != nil {
			return false
		}
		return rt.Equal(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func printable(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 0x20 && r < 0x7F {
			b.WriteRune(r)
		}
	}
	return strings.TrimSpace(b.String())
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"cn",              // no '='
		"=value,o=Lucent", // empty attr
		"cn=x,,o=Lucent",  // empty RDN
		"c n=x",           // space in attr type
		`cn=trailing\`,    // trailing backslash
		"-x=1",            // leading hyphen
		"cn=a+",           // empty AVA after '+'
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

func TestRootAndHierarchy(t *testing.T) {
	root, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if !root.IsRoot() {
		t.Error("empty string should parse to root")
	}
	base := MustParse("o=Lucent")
	child := base.Child(RDN{{Attr: "o", Value: "R&D"}})
	if child.String() != "o=R&D,o=Lucent" {
		t.Errorf("child = %q", child.String())
	}
	grand := child.Child(RDN{{Attr: "cn", Value: "Jill Lu"}})
	if !grand.IsDescendantOf(base) {
		t.Error("grandchild not descendant of base")
	}
	if !grand.IsDescendantOf(child) {
		t.Error("grandchild not descendant of child")
	}
	if grand.IsDescendantOf(grand) {
		t.Error("DN is not a strict descendant of itself")
	}
	if base.IsDescendantOf(grand) {
		t.Error("ancestor reported as descendant")
	}
	if !grand.Parent().Equal(child) {
		t.Error("Parent() broken")
	}
}

func TestWithRDNModels_ModifyRDN(t *testing.T) {
	d := MustParse("cn=John Doe,o=Marketing,o=Lucent")
	renamed := d.WithRDN(RDN{{Attr: "cn", Value: "John Q Doe"}})
	if renamed.String() != "cn=John Q Doe,o=Marketing,o=Lucent" {
		t.Errorf("renamed = %q", renamed.String())
	}
	// Original must be unchanged (WithRDN copies).
	if d.String() != "cn=John Doe,o=Marketing,o=Lucent" {
		t.Errorf("original mutated: %q", d.String())
	}
	if !renamed.Parent().Equal(d.Parent()) {
		t.Error("rename moved the entry")
	}
}

func TestDescendantDiffersFromPrefixStringMatch(t *testing.T) {
	// "o=LucentX" must not count as under "o=Lucent".
	a := MustParse("cn=x,o=LucentX")
	if a.IsDescendantOf(MustParse("o=Lucent")) {
		t.Error("prefix string confusion in IsDescendantOf")
	}
}

func TestNormalizeCollapsesInternalSpace(t *testing.T) {
	a := MustParse("cn=John    Doe,o=Lucent")
	b := MustParse("cn=John Doe,o=Lucent")
	if !a.Equal(b) {
		t.Error("internal whitespace should normalize")
	}
}
