package ldap

import "fmt"

// ResultCode is an LDAP v3 result code (RFC 2251 §4.1.10).
type ResultCode int

// Result codes used by the server and clients in this system.
const (
	ResultSuccess                ResultCode = 0
	ResultOperationsError        ResultCode = 1
	ResultProtocolError          ResultCode = 2
	ResultTimeLimitExceeded      ResultCode = 3
	ResultSizeLimitExceeded      ResultCode = 4
	ResultCompareFalse           ResultCode = 5
	ResultCompareTrue            ResultCode = 6
	ResultAuthMethodNotSupported ResultCode = 7
	ResultUndefinedAttributeType ResultCode = 17
	ResultConstraintViolation    ResultCode = 19
	ResultAttributeOrValueExists ResultCode = 20
	ResultInvalidAttributeSyntax ResultCode = 21
	ResultNoSuchAttribute        ResultCode = 16
	ResultNoSuchObject           ResultCode = 32
	ResultInvalidDNSyntax        ResultCode = 34
	ResultInvalidCredentials     ResultCode = 49
	ResultInsufficientAccess     ResultCode = 50
	ResultBusy                   ResultCode = 51
	ResultUnavailable            ResultCode = 52
	ResultUnwillingToPerform     ResultCode = 53
	ResultNamingViolation        ResultCode = 64
	ResultObjectClassViolation   ResultCode = 65
	ResultNotAllowedOnNonLeaf    ResultCode = 66
	ResultNotAllowedOnRDN        ResultCode = 67
	ResultEntryAlreadyExists     ResultCode = 68
	ResultOther                  ResultCode = 80
)

var resultNames = map[ResultCode]string{
	ResultSuccess:                "success",
	ResultOperationsError:        "operationsError",
	ResultProtocolError:          "protocolError",
	ResultTimeLimitExceeded:      "timeLimitExceeded",
	ResultSizeLimitExceeded:      "sizeLimitExceeded",
	ResultCompareFalse:           "compareFalse",
	ResultCompareTrue:            "compareTrue",
	ResultAuthMethodNotSupported: "authMethodNotSupported",
	ResultUndefinedAttributeType: "undefinedAttributeType",
	ResultConstraintViolation:    "constraintViolation",
	ResultAttributeOrValueExists: "attributeOrValueExists",
	ResultInvalidAttributeSyntax: "invalidAttributeSyntax",
	ResultNoSuchAttribute:        "noSuchAttribute",
	ResultNoSuchObject:           "noSuchObject",
	ResultInvalidDNSyntax:        "invalidDNSyntax",
	ResultInvalidCredentials:     "invalidCredentials",
	ResultInsufficientAccess:     "insufficientAccessRights",
	ResultBusy:                   "busy",
	ResultUnavailable:            "unavailable",
	ResultUnwillingToPerform:     "unwillingToPerform",
	ResultNamingViolation:        "namingViolation",
	ResultObjectClassViolation:   "objectClassViolation",
	ResultNotAllowedOnNonLeaf:    "notAllowedOnNonLeaf",
	ResultNotAllowedOnRDN:        "notAllowedOnRDN",
	ResultEntryAlreadyExists:     "entryAlreadyExists",
	ResultOther:                  "other",
}

func (c ResultCode) String() string {
	if s, ok := resultNames[c]; ok {
		return s
	}
	return fmt.Sprintf("resultCode(%d)", int(c))
}

// Result is the LDAPResult component shared by all response messages.
type Result struct {
	Code      ResultCode
	MatchedDN string
	Message   string
}

// Err returns nil for success and compareTrue, and a *ResultError otherwise.
func (r Result) Err() error {
	if r.Code == ResultSuccess || r.Code == ResultCompareTrue {
		return nil
	}
	return &ResultError{Result: r}
}

// ResultError wraps a non-success LDAPResult as a Go error.
type ResultError struct {
	Result Result
}

func (e *ResultError) Error() string {
	if e.Result.Message != "" {
		return fmt.Sprintf("ldap: %s: %s", e.Result.Code, e.Result.Message)
	}
	return "ldap: " + e.Result.Code.String()
}

// Code extracts the result code from err when it is a *ResultError;
// otherwise it returns ResultOther (and false).
func Code(err error) (ResultCode, bool) {
	if re, ok := err.(*ResultError); ok {
		return re.Result.Code, true
	}
	return ResultOther, false
}

// IsCode reports whether err is an LDAP result error with the given code.
func IsCode(err error, code ResultCode) bool {
	c, ok := Code(err)
	return ok && c == code
}
