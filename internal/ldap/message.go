// Package ldap implements the LDAP v3 message layer (RFC 2251) used by the
// MetaComm directory server, the LTAP trigger gateway, and the client
// library: bind, unbind, search, add, delete, modify, modifyDN, compare,
// abandon and extended operations, together with search filters and result
// codes.
//
// From a database perspective (paper §2) LDAP is a very simple query and
// update protocol: entries live in a tree, each identified by a DN; the only
// update commands create or delete a single leaf or modify a single node;
// individual updates are atomic but cannot be grouped into transactions.
// That weakness is exactly what the rest of MetaComm is built to cope with.
package ldap

import (
	"errors"
	"fmt"
	"io"

	"metacomm/internal/ber"
)

// Scope is an LDAP search scope.
type Scope int

// Search scopes.
const (
	ScopeBaseObject   Scope = 0
	ScopeSingleLevel  Scope = 1
	ScopeWholeSubtree Scope = 2
)

func (s Scope) String() string {
	switch s {
	case ScopeBaseObject:
		return "base"
	case ScopeSingleLevel:
		return "one"
	case ScopeWholeSubtree:
		return "sub"
	}
	return fmt.Sprintf("scope(%d)", int(s))
}

// ModOp is the operation of a single modification within a Modify request.
type ModOp int

// Modify operations.
const (
	ModAdd     ModOp = 0
	ModDelete  ModOp = 1
	ModReplace ModOp = 2
)

func (m ModOp) String() string {
	switch m {
	case ModAdd:
		return "add"
	case ModDelete:
		return "delete"
	case ModReplace:
		return "replace"
	}
	return fmt.Sprintf("modOp(%d)", int(m))
}

// Attribute is an attribute description with its values.
type Attribute struct {
	Type   string
	Values []string
}

// Change is one modification within a Modify request.
type Change struct {
	Op        ModOp
	Attribute Attribute
}

// Application tags for the protocolOp CHOICE.
const (
	tagBindRequest      = 0
	tagBindResponse     = 1
	tagUnbindRequest    = 2
	tagSearchRequest    = 3
	tagSearchEntry      = 4
	tagSearchDone       = 5
	tagModifyRequest    = 6
	tagModifyResponse   = 7
	tagAddRequest       = 8
	tagAddResponse      = 9
	tagDelRequest       = 10
	tagDelResponse      = 11
	tagModifyDNRequest  = 12
	tagModifyDNResponse = 13
	tagCompareRequest   = 14
	tagCompareResponse  = 15
	tagAbandonRequest   = 16
	tagExtendedRequest  = 23
	tagExtendedResponse = 24
)

// Op is one LDAP protocol operation (the protocolOp CHOICE).
type Op interface {
	encode() *ber.Element
}

// Message is a complete LDAPMessage envelope.
type Message struct {
	ID int32
	Op Op
}

// Request operations.

// BindRequest authenticates a connection (simple bind only).
type BindRequest struct {
	Version  int
	Name     string
	Password string
}

// UnbindRequest terminates a connection.
type UnbindRequest struct{}

// SearchRequest queries the directory.
type SearchRequest struct {
	BaseDN       string
	Scope        Scope
	DerefAliases int
	SizeLimit    int
	TimeLimit    int
	TypesOnly    bool
	Filter       *Filter
	Attributes   []string
}

// AddRequest creates a new leaf entry.
type AddRequest struct {
	DN         string
	Attributes []Attribute
}

// DeleteRequest removes a leaf entry.
type DeleteRequest struct {
	DN string
}

// ModifyRequest modifies attributes of a single entry (never its RDN).
type ModifyRequest struct {
	DN      string
	Changes []Change
}

// ModifyDNRequest renames an entry (the ModifyRDN of the paper).
type ModifyDNRequest struct {
	DN           string
	NewRDN       string
	DeleteOldRDN bool
	NewSuperior  string // optional; empty means keep parent
}

// CompareRequest tests one attribute/value assertion against an entry.
type CompareRequest struct {
	DN    string
	Attr  string
	Value string
}

// AbandonRequest asks the server to abandon an outstanding operation.
type AbandonRequest struct {
	IDToAbandon int32
}

// ExtendedRequest carries an extension identified by a numeric OID. LTAP
// uses extended operations for its quiesce facility.
type ExtendedRequest struct {
	Name  string
	Value []byte
}

// NoticeOfDisconnection is the OID of the unsolicited notice (RFC 4511
// §4.4.1) a server sends, with message ID 0, before dropping a connection it
// cannot continue to serve — e.g. one that sent an oversized message.
const NoticeOfDisconnection = "1.3.6.1.4.1.1466.20036"

// Response operations.

// BindResponse carries the result of a bind.
type BindResponse struct{ Result }

// SearchResultEntry is one entry returned from a search.
type SearchResultEntry struct {
	DN         string
	Attributes []Attribute
}

// SearchResultDone terminates a search result stream.
type SearchResultDone struct{ Result }

// ModifyResponse carries the result of a modify.
type ModifyResponse struct{ Result }

// AddResponse carries the result of an add.
type AddResponse struct{ Result }

// DeleteResponse carries the result of a delete.
type DeleteResponse struct{ Result }

// ModifyDNResponse carries the result of a modifyDN.
type ModifyDNResponse struct{ Result }

// CompareResponse carries the result of a compare.
type CompareResponse struct{ Result }

// ExtendedResponse carries the result of an extended operation.
type ExtendedResponse struct {
	Result
	Name  string
	Value []byte
}

// --- encoding ---

func encodeResult(tag uint32, r Result, extra ...*ber.Element) *ber.Element {
	e := ber.ApplicationConstructed(tag,
		ber.NewEnumerated(int64(r.Code)),
		ber.NewOctetString(r.MatchedDN),
		ber.NewOctetString(r.Message))
	return e.Append(extra...)
}

func encodeAttribute(a Attribute) *ber.Element {
	vals := ber.NewSet()
	for _, v := range a.Values {
		vals.Append(ber.NewOctetString(v))
	}
	return ber.NewSequence(ber.NewOctetString(a.Type), vals)
}

func (r *BindRequest) encode() *ber.Element {
	return ber.ApplicationConstructed(tagBindRequest,
		ber.NewInteger(int64(r.Version)),
		ber.NewOctetString(r.Name),
		ber.ContextPrimitive(0, []byte(r.Password)))
}

func (*UnbindRequest) encode() *ber.Element {
	return ber.ApplicationPrimitive(tagUnbindRequest, nil)
}

func (r *SearchRequest) encode() *ber.Element {
	attrs := ber.NewSequence()
	for _, a := range r.Attributes {
		attrs.Append(ber.NewOctetString(a))
	}
	f := r.Filter
	if f == nil {
		f = Present("objectClass")
	}
	return ber.ApplicationConstructed(tagSearchRequest,
		ber.NewOctetString(r.BaseDN),
		ber.NewEnumerated(int64(r.Scope)),
		ber.NewEnumerated(int64(r.DerefAliases)),
		ber.NewInteger(int64(r.SizeLimit)),
		ber.NewInteger(int64(r.TimeLimit)),
		ber.NewBoolean(r.TypesOnly),
		f.encode(),
		attrs)
}

func (r *AddRequest) encode() *ber.Element {
	attrs := ber.NewSequence()
	for _, a := range r.Attributes {
		attrs.Append(encodeAttribute(a))
	}
	return ber.ApplicationConstructed(tagAddRequest, ber.NewOctetString(r.DN), attrs)
}

func (r *DeleteRequest) encode() *ber.Element {
	return ber.ApplicationPrimitive(tagDelRequest, []byte(r.DN))
}

func (r *ModifyRequest) encode() *ber.Element {
	changes := ber.NewSequence()
	for _, c := range r.Changes {
		changes.Append(ber.NewSequence(
			ber.NewEnumerated(int64(c.Op)),
			encodeAttribute(c.Attribute)))
	}
	return ber.ApplicationConstructed(tagModifyRequest, ber.NewOctetString(r.DN), changes)
}

func (r *ModifyDNRequest) encode() *ber.Element {
	e := ber.ApplicationConstructed(tagModifyDNRequest,
		ber.NewOctetString(r.DN),
		ber.NewOctetString(r.NewRDN),
		ber.NewBoolean(r.DeleteOldRDN))
	if r.NewSuperior != "" {
		e.Append(ber.ContextPrimitive(0, []byte(r.NewSuperior)))
	}
	return e
}

func (r *CompareRequest) encode() *ber.Element {
	return ber.ApplicationConstructed(tagCompareRequest,
		ber.NewOctetString(r.DN),
		ber.NewSequence(ber.NewOctetString(r.Attr), ber.NewOctetString(r.Value)))
}

func (r *AbandonRequest) encode() *ber.Element {
	return ber.Tagged(ber.ClassApplication, tagAbandonRequest, ber.NewInteger(int64(r.IDToAbandon)))
}

func (r *ExtendedRequest) encode() *ber.Element {
	e := ber.ApplicationConstructed(tagExtendedRequest,
		ber.ContextPrimitive(0, []byte(r.Name)))
	if r.Value != nil {
		e.Append(ber.ContextPrimitive(1, r.Value))
	}
	return e
}

func (r *BindResponse) encode() *ber.Element { return encodeResult(tagBindResponse, r.Result) }
func (r *SearchResultDone) encode() *ber.Element {
	return encodeResult(tagSearchDone, r.Result)
}
func (r *ModifyResponse) encode() *ber.Element { return encodeResult(tagModifyResponse, r.Result) }
func (r *AddResponse) encode() *ber.Element    { return encodeResult(tagAddResponse, r.Result) }
func (r *DeleteResponse) encode() *ber.Element { return encodeResult(tagDelResponse, r.Result) }
func (r *ModifyDNResponse) encode() *ber.Element {
	return encodeResult(tagModifyDNResponse, r.Result)
}
func (r *CompareResponse) encode() *ber.Element {
	return encodeResult(tagCompareResponse, r.Result)
}

func (r *SearchResultEntry) encode() *ber.Element {
	attrs := ber.NewSequence()
	for _, a := range r.Attributes {
		attrs.Append(encodeAttribute(a))
	}
	return ber.ApplicationConstructed(tagSearchEntry, ber.NewOctetString(r.DN), attrs)
}

func (r *ExtendedResponse) encode() *ber.Element {
	var extra []*ber.Element
	if r.Name != "" {
		extra = append(extra, ber.ContextPrimitive(10, []byte(r.Name)))
	}
	if r.Value != nil {
		extra = append(extra, ber.ContextPrimitive(11, r.Value))
	}
	return encodeResult(tagExtendedResponse, r.Result, extra...)
}

// Encode returns the wire encoding of the message.
func (m *Message) Encode() []byte {
	return m.element().Encode()
}

// AppendTo appends the encoded message to buf and returns the extended
// buffer; callers with a long-lived write buffer avoid per-message
// allocations.
func (m *Message) AppendTo(buf []byte) []byte {
	return m.element().AppendTo(buf)
}

// Write writes the encoded message to w in one Write, using a pooled
// encode buffer.
func (m *Message) Write(w io.Writer) error {
	_, err := m.element().WriteTo(w)
	return err
}

func (m *Message) element() *ber.Element {
	return ber.NewSequence(ber.NewInteger(int64(m.ID)), m.Op.encode())
}

// --- decoding ---

// ReadMessage reads and decodes one LDAPMessage from r, allocating fresh
// buffers for the message. Connection loops should prefer Reader, which
// reuses its decode storage across messages.
func ReadMessage(r io.Reader) (*Message, error) {
	e, err := ber.ReadElement(r)
	if err != nil {
		return nil, err
	}
	return DecodeMessage(e)
}

// Reader reads LDAP messages from one connection with zero-copy BER decode:
// the BER element tree is borrowed from per-connection reused storage, and
// DecodeMessage converts everything it keeps into owned memory (strings, or
// explicit clones for the raw []byte fields), so returned Messages are safe
// to retain — changelog records, cache entries and journal lines built from
// them never alias the read buffer. Not safe for concurrent use.
type Reader struct {
	br *ber.Reader
}

// NewReader wraps r (ideally a net.Conn; it is buffered internally).
func NewReader(r io.Reader) *Reader {
	return &Reader{br: ber.NewReader(r)}
}

// SetMaxMessageSize bounds a single wire message; n <= 0 restores
// ber.DefaultMaxMessageSize. Oversized messages fail with an error wrapping
// ber.ErrTooLarge before their content is read or allocated.
func (r *Reader) SetMaxMessageSize(n int) { r.br.SetMaxMessageSize(n) }

// MessageBuffered reports whether a complete request is already buffered, so
// servers can coalesce responses: flush only before a read that would block.
func (r *Reader) MessageBuffered() bool { return r.br.MessageBuffered() }

// ReadMessage reads and decodes one LDAPMessage. The returned message owns
// its memory.
func (r *Reader) ReadMessage() (*Message, error) {
	e, err := r.br.ReadElement()
	if err != nil {
		return nil, err
	}
	return DecodeMessage(e)
}

// DecodeMessage decodes an LDAPMessage from a parsed BER element.
func DecodeMessage(e *ber.Element) (*Message, error) {
	if !e.Is(ber.ClassUniversal, ber.TagSequence) {
		return nil, errors.New("ldap: message is not a SEQUENCE")
	}
	idEl, err := e.Child(0)
	if err != nil {
		return nil, err
	}
	id, err := idEl.Int()
	if err != nil {
		return nil, fmt.Errorf("ldap: bad message id: %v", err)
	}
	opEl, err := e.Child(1)
	if err != nil {
		return nil, err
	}
	if opEl.Class != ber.ClassApplication {
		return nil, fmt.Errorf("ldap: protocolOp has class %v", opEl.Class)
	}
	op, err := decodeOp(opEl)
	if err != nil {
		return nil, err
	}
	return &Message{ID: int32(id), Op: op}, nil
}

func decodeResult(e *ber.Element) (Result, error) {
	var r Result
	codeEl, err := e.Child(0)
	if err != nil {
		return r, err
	}
	code, err := codeEl.Int()
	if err != nil {
		return r, err
	}
	matched, err := e.Child(1)
	if err != nil {
		return r, err
	}
	msg, err := e.Child(2)
	if err != nil {
		return r, err
	}
	return Result{Code: ResultCode(code), MatchedDN: matched.Str(), Message: msg.Str()}, nil
}

func decodeAttribute(e *ber.Element) (Attribute, error) {
	typeEl, err := e.Child(0)
	if err != nil {
		return Attribute{}, err
	}
	valsEl, err := e.Child(1)
	if err != nil {
		return Attribute{}, err
	}
	a := Attribute{Type: typeEl.Str()}
	for _, v := range valsEl.Children {
		a.Values = append(a.Values, v.Str())
	}
	return a, nil
}

func decodeOp(e *ber.Element) (Op, error) {
	switch e.Tag {
	case tagBindRequest:
		ver, err := e.Child(0)
		if err != nil {
			return nil, err
		}
		v, err := ver.Int()
		if err != nil {
			return nil, err
		}
		name, err := e.Child(1)
		if err != nil {
			return nil, err
		}
		auth, err := e.Child(2)
		if err != nil {
			return nil, err
		}
		if auth.Class != ber.ClassContext || auth.Tag != 0 {
			return nil, errors.New("ldap: only simple bind supported")
		}
		return &BindRequest{Version: int(v), Name: name.Str(), Password: auth.Str()}, nil

	case tagUnbindRequest:
		return &UnbindRequest{}, nil

	case tagSearchRequest:
		if len(e.Children) < 8 {
			return nil, errors.New("ldap: short search request")
		}
		scope, err := e.Children[1].Int()
		if err != nil {
			return nil, err
		}
		deref, err := e.Children[2].Int()
		if err != nil {
			return nil, err
		}
		sizeLimit, err := e.Children[3].Int()
		if err != nil {
			return nil, err
		}
		timeLimit, err := e.Children[4].Int()
		if err != nil {
			return nil, err
		}
		typesOnly, err := e.Children[5].Bool()
		if err != nil {
			return nil, err
		}
		filter, err := decodeFilter(e.Children[6])
		if err != nil {
			return nil, err
		}
		req := &SearchRequest{
			BaseDN:       e.Children[0].Str(),
			Scope:        Scope(scope),
			DerefAliases: int(deref),
			SizeLimit:    int(sizeLimit),
			TimeLimit:    int(timeLimit),
			TypesOnly:    typesOnly,
			Filter:       filter,
		}
		for _, a := range e.Children[7].Children {
			req.Attributes = append(req.Attributes, a.Str())
		}
		return req, nil

	case tagAddRequest:
		dnEl, err := e.Child(0)
		if err != nil {
			return nil, err
		}
		attrsEl, err := e.Child(1)
		if err != nil {
			return nil, err
		}
		req := &AddRequest{DN: dnEl.Str()}
		for _, a := range attrsEl.Children {
			attr, err := decodeAttribute(a)
			if err != nil {
				return nil, err
			}
			req.Attributes = append(req.Attributes, attr)
		}
		return req, nil

	case tagDelRequest:
		return &DeleteRequest{DN: e.Str()}, nil

	case tagModifyRequest:
		dnEl, err := e.Child(0)
		if err != nil {
			return nil, err
		}
		changesEl, err := e.Child(1)
		if err != nil {
			return nil, err
		}
		req := &ModifyRequest{DN: dnEl.Str()}
		for _, c := range changesEl.Children {
			opEl, err := c.Child(0)
			if err != nil {
				return nil, err
			}
			opv, err := opEl.Int()
			if err != nil {
				return nil, err
			}
			attrEl, err := c.Child(1)
			if err != nil {
				return nil, err
			}
			attr, err := decodeAttribute(attrEl)
			if err != nil {
				return nil, err
			}
			req.Changes = append(req.Changes, Change{Op: ModOp(opv), Attribute: attr})
		}
		return req, nil

	case tagModifyDNRequest:
		dnEl, err := e.Child(0)
		if err != nil {
			return nil, err
		}
		rdnEl, err := e.Child(1)
		if err != nil {
			return nil, err
		}
		delEl, err := e.Child(2)
		if err != nil {
			return nil, err
		}
		delOld, err := delEl.Bool()
		if err != nil {
			return nil, err
		}
		req := &ModifyDNRequest{DN: dnEl.Str(), NewRDN: rdnEl.Str(), DeleteOldRDN: delOld}
		if len(e.Children) > 3 && e.Children[3].Is(ber.ClassContext, 0) {
			req.NewSuperior = e.Children[3].Str()
		}
		return req, nil

	case tagCompareRequest:
		dnEl, err := e.Child(0)
		if err != nil {
			return nil, err
		}
		avaEl, err := e.Child(1)
		if err != nil {
			return nil, err
		}
		attrEl, err := avaEl.Child(0)
		if err != nil {
			return nil, err
		}
		valEl, err := avaEl.Child(1)
		if err != nil {
			return nil, err
		}
		return &CompareRequest{DN: dnEl.Str(), Attr: attrEl.Str(), Value: valEl.Str()}, nil

	case tagAbandonRequest:
		id, err := e.Int()
		if err != nil {
			return nil, err
		}
		return &AbandonRequest{IDToAbandon: int32(id)}, nil

	case tagExtendedRequest:
		req := &ExtendedRequest{}
		for _, c := range e.Children {
			switch c.Tag {
			case 0:
				req.Name = c.Str()
			case 1:
				// Copy-on-retain: the element may borrow a reused read
				// buffer (ldap.Reader), and extended values can outlive the
				// request (quiesce bodies, future controls).
				req.Value = append([]byte(nil), c.Value...)
			}
		}
		if req.Name == "" {
			return nil, errors.New("ldap: extended request missing name")
		}
		return req, nil

	case tagBindResponse:
		r, err := decodeResult(e)
		return &BindResponse{Result: r}, err
	case tagSearchDone:
		r, err := decodeResult(e)
		return &SearchResultDone{Result: r}, err
	case tagModifyResponse:
		r, err := decodeResult(e)
		return &ModifyResponse{Result: r}, err
	case tagAddResponse:
		r, err := decodeResult(e)
		return &AddResponse{Result: r}, err
	case tagDelResponse:
		r, err := decodeResult(e)
		return &DeleteResponse{Result: r}, err
	case tagModifyDNResponse:
		r, err := decodeResult(e)
		return &ModifyDNResponse{Result: r}, err
	case tagCompareResponse:
		r, err := decodeResult(e)
		return &CompareResponse{Result: r}, err

	case tagSearchEntry:
		dnEl, err := e.Child(0)
		if err != nil {
			return nil, err
		}
		attrsEl, err := e.Child(1)
		if err != nil {
			return nil, err
		}
		entry := &SearchResultEntry{DN: dnEl.Str()}
		for _, a := range attrsEl.Children {
			attr, err := decodeAttribute(a)
			if err != nil {
				return nil, err
			}
			entry.Attributes = append(entry.Attributes, attr)
		}
		return entry, nil

	case tagExtendedResponse:
		r, err := decodeResult(e)
		if err != nil {
			return nil, err
		}
		resp := &ExtendedResponse{Result: r}
		for _, c := range e.Children[3:] {
			switch c.Tag {
			case 10:
				resp.Name = c.Str()
			case 11:
				// Copy-on-retain, as for ExtendedRequest above.
				resp.Value = append([]byte(nil), c.Value...)
			}
		}
		return resp, nil
	}
	return nil, fmt.Errorf("ldap: unknown protocolOp tag %d", e.Tag)
}
