package ldap

import (
	"errors"
	"fmt"
	"strings"

	"metacomm/internal/ber"
)

// FilterKind discriminates the LDAP search-filter CHOICE.
type FilterKind int

// Filter kinds, with values matching the LDAP context tags.
const (
	FilterAnd FilterKind = iota
	FilterOr
	FilterNot
	FilterEquality
	FilterSubstrings
	FilterGreaterOrEqual
	FilterLessOrEqual
	FilterPresent
	FilterApprox
)

// Filter is an LDAP search filter tree.
type Filter struct {
	Kind     FilterKind
	Children []*Filter // and / or / not
	Attr     string
	Value    string
	// Substring components (FilterSubstrings only).
	Initial string
	Any     []string
	Final   string
}

// Convenience constructors used heavily by the system and tests.

// Eq returns an equality filter (attr=value).
func Eq(attr, value string) *Filter {
	return &Filter{Kind: FilterEquality, Attr: attr, Value: value}
}

// Present returns a presence filter (attr=*).
func Present(attr string) *Filter { return &Filter{Kind: FilterPresent, Attr: attr} }

// And combines filters conjunctively.
func And(fs ...*Filter) *Filter { return &Filter{Kind: FilterAnd, Children: fs} }

// Or combines filters disjunctively.
func Or(fs ...*Filter) *Filter { return &Filter{Kind: FilterOr, Children: fs} }

// Not negates a filter.
func Not(f *Filter) *Filter { return &Filter{Kind: FilterNot, Children: []*Filter{f}} }

// String renders the filter in RFC 2254 string form.
func (f *Filter) String() string {
	var b strings.Builder
	f.write(&b)
	return b.String()
}

func (f *Filter) write(b *strings.Builder) {
	b.WriteByte('(')
	switch f.Kind {
	case FilterAnd, FilterOr:
		if f.Kind == FilterAnd {
			b.WriteByte('&')
		} else {
			b.WriteByte('|')
		}
		for _, c := range f.Children {
			c.write(b)
		}
	case FilterNot:
		b.WriteByte('!')
		f.Children[0].write(b)
	case FilterEquality:
		b.WriteString(f.Attr + "=" + escapeFilterValue(f.Value))
	case FilterGreaterOrEqual:
		b.WriteString(f.Attr + ">=" + escapeFilterValue(f.Value))
	case FilterLessOrEqual:
		b.WriteString(f.Attr + "<=" + escapeFilterValue(f.Value))
	case FilterApprox:
		b.WriteString(f.Attr + "~=" + escapeFilterValue(f.Value))
	case FilterPresent:
		b.WriteString(f.Attr + "=*")
	case FilterSubstrings:
		b.WriteString(f.Attr + "=" + escapeFilterValue(f.Initial))
		for _, a := range f.Any {
			b.WriteString("*" + escapeFilterValue(a))
		}
		b.WriteString("*" + escapeFilterValue(f.Final))
	}
	b.WriteByte(')')
}

func escapeFilterValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '*', '(', ')', '\\', 0:
			fmt.Fprintf(&b, "\\%02x", v[i])
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// ParseFilter parses an RFC 2254 filter string such as
// "(&(objectClass=mcPerson)(telephoneNumber=+1 908 582 9*))".
func ParseFilter(s string) (*Filter, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, errors.New("ldap: empty filter")
	}
	if !strings.HasPrefix(s, "(") {
		// Allow the common shorthand without outer parens.
		s = "(" + s + ")"
	}
	f, rest, err := parseFilter(s)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(rest) != "" {
		return nil, fmt.Errorf("ldap: trailing filter text %q", rest)
	}
	return f, nil
}

func parseFilter(s string) (*Filter, string, error) {
	if len(s) == 0 || s[0] != '(' {
		return nil, "", fmt.Errorf("ldap: filter must start with '(' at %q", s)
	}
	s = s[1:]
	if len(s) == 0 {
		return nil, "", errors.New("ldap: unterminated filter")
	}
	switch s[0] {
	case '&', '|':
		kind := FilterAnd
		if s[0] == '|' {
			kind = FilterOr
		}
		s = s[1:]
		var children []*Filter
		for len(s) > 0 && s[0] == '(' {
			c, rest, err := parseFilter(s)
			if err != nil {
				return nil, "", err
			}
			children = append(children, c)
			s = rest
		}
		if len(children) == 0 {
			return nil, "", errors.New("ldap: empty and/or filter")
		}
		if len(s) == 0 || s[0] != ')' {
			return nil, "", errors.New("ldap: missing ')' after and/or")
		}
		return &Filter{Kind: kind, Children: children}, s[1:], nil
	case '!':
		c, rest, err := parseFilter(s[1:])
		if err != nil {
			return nil, "", err
		}
		if len(rest) == 0 || rest[0] != ')' {
			return nil, "", errors.New("ldap: missing ')' after not")
		}
		return Not(c), rest[1:], nil
	}
	// Simple item: attr OP value ')'
	end := strings.IndexByte(s, ')')
	if end < 0 {
		return nil, "", errors.New("ldap: unterminated filter item")
	}
	item, rest := s[:end], s[end+1:]
	f, err := parseSimple(item)
	if err != nil {
		return nil, "", err
	}
	return f, rest, nil
}

func parseSimple(item string) (*Filter, error) {
	var op string
	var opIdx int
	for i := 0; i < len(item); i++ {
		switch item[i] {
		case '>', '<', '~':
			if i+1 < len(item) && item[i+1] == '=' {
				op, opIdx = item[i:i+2], i
			}
		case '=':
			if op == "" {
				op, opIdx = "=", i
			}
		}
		if op != "" {
			break
		}
	}
	if op == "" {
		return nil, fmt.Errorf("ldap: filter item %q has no operator", item)
	}
	attr := strings.TrimSpace(item[:opIdx])
	if attr == "" {
		return nil, fmt.Errorf("ldap: filter item %q has no attribute", item)
	}
	raw := item[opIdx+len(op):]
	switch op {
	case ">=":
		v, err := unescapeFilterValue(raw)
		if err != nil {
			return nil, err
		}
		return &Filter{Kind: FilterGreaterOrEqual, Attr: attr, Value: v}, nil
	case "<=":
		v, err := unescapeFilterValue(raw)
		if err != nil {
			return nil, err
		}
		return &Filter{Kind: FilterLessOrEqual, Attr: attr, Value: v}, nil
	case "~=":
		v, err := unescapeFilterValue(raw)
		if err != nil {
			return nil, err
		}
		return &Filter{Kind: FilterApprox, Attr: attr, Value: v}, nil
	}
	// '=': presence, substring or equality depending on '*' placement.
	if raw == "*" {
		return Present(attr), nil
	}
	if !strings.Contains(raw, "*") {
		v, err := unescapeFilterValue(raw)
		if err != nil {
			return nil, err
		}
		return Eq(attr, v), nil
	}
	parts := strings.Split(raw, "*")
	f := &Filter{Kind: FilterSubstrings, Attr: attr}
	var err error
	if f.Initial, err = unescapeFilterValue(parts[0]); err != nil {
		return nil, err
	}
	if f.Final, err = unescapeFilterValue(parts[len(parts)-1]); err != nil {
		return nil, err
	}
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		v, err := unescapeFilterValue(mid)
		if err != nil {
			return nil, err
		}
		f.Any = append(f.Any, v)
	}
	return f, nil
}

func unescapeFilterValue(s string) (string, error) {
	if !strings.Contains(s, "\\") {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", errors.New("ldap: truncated filter escape")
		}
		hi, lo := hexVal(s[i+1]), hexVal(s[i+2])
		if hi == 0xFF || lo == 0xFF {
			return "", fmt.Errorf("ldap: bad filter escape in %q", s)
		}
		b.WriteByte(hi<<4 | lo)
		i += 2
	}
	return b.String(), nil
}

func hexVal(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10
	}
	return 0xFF
}

// Matches evaluates the filter against an entry presented as an attribute
// getter: get must return all values of the (case-insensitive) attribute, or
// nil when absent. Matching is case-insensitive, per the directoryString
// matching rules LDAP directories use for the attributes in this system.
func (f *Filter) Matches(get func(attr string) []string) bool {
	switch f.Kind {
	case FilterAnd:
		for _, c := range f.Children {
			if !c.Matches(get) {
				return false
			}
		}
		return true
	case FilterOr:
		for _, c := range f.Children {
			if c.Matches(get) {
				return true
			}
		}
		return false
	case FilterNot:
		return !f.Children[0].Matches(get)
	case FilterPresent:
		return len(get(f.Attr)) > 0
	case FilterEquality, FilterApprox:
		want := strings.ToLower(f.Value)
		for _, v := range get(f.Attr) {
			if strings.ToLower(v) == want {
				return true
			}
		}
		return false
	case FilterGreaterOrEqual:
		for _, v := range get(f.Attr) {
			if strings.ToLower(v) >= strings.ToLower(f.Value) {
				return true
			}
		}
		return false
	case FilterLessOrEqual:
		for _, v := range get(f.Attr) {
			if strings.ToLower(v) <= strings.ToLower(f.Value) {
				return true
			}
		}
		return false
	case FilterSubstrings:
		for _, v := range get(f.Attr) {
			if f.matchSubstring(strings.ToLower(v)) {
				return true
			}
		}
		return false
	}
	return false
}

func (f *Filter) matchSubstring(v string) bool {
	if ini := strings.ToLower(f.Initial); ini != "" {
		if !strings.HasPrefix(v, ini) {
			return false
		}
		v = v[len(ini):]
	}
	for _, a := range f.Any {
		a = strings.ToLower(a)
		i := strings.Index(v, a)
		if i < 0 {
			return false
		}
		v = v[i+len(a):]
	}
	if fin := strings.ToLower(f.Final); fin != "" {
		return strings.HasSuffix(v, fin)
	}
	return true
}

// encode returns the BER encoding of the filter with LDAP context tags.
func (f *Filter) encode() *ber.Element {
	switch f.Kind {
	case FilterAnd, FilterOr:
		e := ber.ContextConstructed(uint32(f.Kind))
		for _, c := range f.Children {
			e.Append(c.encode())
		}
		return e
	case FilterNot:
		return ber.ContextConstructed(2, f.Children[0].encode())
	case FilterEquality, FilterGreaterOrEqual, FilterLessOrEqual, FilterApprox:
		return ber.ContextConstructed(uint32(f.Kind),
			ber.NewOctetString(f.Attr), ber.NewOctetString(f.Value))
	case FilterPresent:
		return ber.ContextPrimitive(7, []byte(f.Attr))
	case FilterSubstrings:
		subs := ber.NewSequence()
		if f.Initial != "" {
			subs.Append(ber.ContextPrimitive(0, []byte(f.Initial)))
		}
		for _, a := range f.Any {
			subs.Append(ber.ContextPrimitive(1, []byte(a)))
		}
		if f.Final != "" {
			subs.Append(ber.ContextPrimitive(2, []byte(f.Final)))
		}
		return ber.ContextConstructed(4, ber.NewOctetString(f.Attr), subs)
	}
	return ber.ContextConstructed(0)
}

func decodeFilter(e *ber.Element) (*Filter, error) {
	if e.Class != ber.ClassContext {
		return nil, fmt.Errorf("ldap: filter element has class %v", e.Class)
	}
	switch e.Tag {
	case 0, 1: // and / or
		kind := FilterAnd
		if e.Tag == 1 {
			kind = FilterOr
		}
		f := &Filter{Kind: kind}
		if len(e.Children) == 0 {
			return nil, errors.New("ldap: empty and/or filter")
		}
		for _, c := range e.Children {
			cf, err := decodeFilter(c)
			if err != nil {
				return nil, err
			}
			f.Children = append(f.Children, cf)
		}
		return f, nil
	case 2: // not
		c, err := e.Child(0)
		if err != nil {
			return nil, err
		}
		cf, err := decodeFilter(c)
		if err != nil {
			return nil, err
		}
		return Not(cf), nil
	case 3, 5, 6, 8: // equality / ge / le / approx
		kinds := map[uint32]FilterKind{3: FilterEquality, 5: FilterGreaterOrEqual, 6: FilterLessOrEqual, 8: FilterApprox}
		attr, err := e.Child(0)
		if err != nil {
			return nil, err
		}
		val, err := e.Child(1)
		if err != nil {
			return nil, err
		}
		return &Filter{Kind: kinds[e.Tag], Attr: attr.Str(), Value: val.Str()}, nil
	case 7: // present
		return Present(e.Str()), nil
	case 4: // substrings
		attr, err := e.Child(0)
		if err != nil {
			return nil, err
		}
		subs, err := e.Child(1)
		if err != nil {
			return nil, err
		}
		f := &Filter{Kind: FilterSubstrings, Attr: attr.Str()}
		for _, s := range subs.Children {
			switch s.Tag {
			case 0:
				f.Initial = s.Str()
			case 1:
				f.Any = append(f.Any, s.Str())
			case 2:
				f.Final = s.Str()
			default:
				return nil, fmt.Errorf("ldap: bad substring tag %d", s.Tag)
			}
		}
		return f, nil
	}
	return nil, fmt.Errorf("ldap: unknown filter tag %d", e.Tag)
}
