package ldap

import (
	"testing"
	"testing/quick"
)

func entryGetter(attrs map[string][]string) func(string) []string {
	lower := make(map[string][]string, len(attrs))
	for k, v := range attrs {
		lower[lowerASCII(k)] = v
	}
	return func(a string) []string { return lower[lowerASCII(a)] }
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

var johnDoe = entryGetter(map[string][]string{
	"objectClass":       {"mcPerson", "definityUser"},
	"cn":                {"John Doe"},
	"telephoneNumber":   {"+1 908 582 9000"},
	"definityExtension": {"5-9000"},
})

func TestParseAndMatchEquality(t *testing.T) {
	f, err := ParseFilter("(cn=john doe)")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Matches(johnDoe) {
		t.Error("case-insensitive equality failed")
	}
	f2, _ := ParseFilter("(cn=jane doe)")
	if f2.Matches(johnDoe) {
		t.Error("wrong value matched")
	}
}

func TestParseComposite(t *testing.T) {
	f, err := ParseFilter("(&(objectClass=mcPerson)(|(cn=John Doe)(cn=Pat Smith))(!(cn=Tim Dickens)))")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Matches(johnDoe) {
		t.Error("composite filter should match")
	}
}

func TestPresence(t *testing.T) {
	f, _ := ParseFilter("(definityExtension=*)")
	if !f.Matches(johnDoe) {
		t.Error("presence failed")
	}
	f2, _ := ParseFilter("(mailboxId=*)")
	if f2.Matches(johnDoe) {
		t.Error("absent attribute reported present")
	}
}

func TestSubstrings(t *testing.T) {
	cases := map[string]bool{
		"(telephoneNumber=+1 908 582 9*)": true, // the paper's partition pattern
		"(telephoneNumber=*9000)":         true,
		"(telephoneNumber=*908*582*)":     true,
		"(telephoneNumber=+1 908 583*)":   false,
		"(cn=J*n*oe)":                     true,
		"(cn=J*z*oe)":                     false,
	}
	for s, want := range cases {
		f, err := ParseFilter(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if got := f.Matches(johnDoe); got != want {
			t.Errorf("%s matched=%v, want %v", s, got, want)
		}
	}
}

func TestOrdering(t *testing.T) {
	ext := entryGetter(map[string][]string{"ext": {"5000"}})
	ge, _ := ParseFilter("(ext>=4000)")
	le, _ := ParseFilter("(ext<=6000)")
	if !ge.Matches(ext) || !le.Matches(ext) {
		t.Error("ordering comparisons failed")
	}
	ge2, _ := ParseFilter("(ext>=6000)")
	if ge2.Matches(ext) {
		t.Error(">= matched smaller value")
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	inputs := []string{
		"(cn=John Doe)",
		"(&(a=1)(b=2))",
		"(|(a=1)(!(b=2)))",
		"(telephoneNumber=+1 908 582 9*)",
		"(cn=*)",
		"(cn=a*b*c)",
		"(ext>=100)",
		"(ext<=100)",
		"(cn~=jon)",
	}
	for _, in := range inputs {
		f, err := ParseFilter(in)
		if err != nil {
			t.Fatalf("parse %q: %v", in, err)
		}
		rt, err := ParseFilter(f.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", f.String(), err)
		}
		if rt.String() != f.String() {
			t.Errorf("%q -> %q -> %q", in, f.String(), rt.String())
		}
	}
}

func TestFilterEscapes(t *testing.T) {
	f := Eq("cn", "weird(name)*\\")
	rt, err := ParseFilter(f.String())
	if err != nil {
		t.Fatalf("reparse escaped: %v", err)
	}
	if rt.Value != "weird(name)*\\" {
		t.Errorf("value = %q", rt.Value)
	}
	getter := entryGetter(map[string][]string{"cn": {"weird(name)*\\"}})
	if !rt.Matches(getter) {
		t.Error("escaped value did not match")
	}
}

func TestFilterBERRoundTrip(t *testing.T) {
	filters := []*Filter{
		Eq("cn", "John Doe"),
		Present("objectClass"),
		And(Eq("a", "1"), Or(Eq("b", "2"), Not(Eq("c", "3")))),
		{Kind: FilterSubstrings, Attr: "tel", Initial: "+1", Any: []string{"908"}, Final: "9000"},
		{Kind: FilterGreaterOrEqual, Attr: "ext", Value: "100"},
	}
	for _, f := range filters {
		dec, err := decodeFilter(f.encode())
		if err != nil {
			t.Fatalf("decode %s: %v", f, err)
		}
		if dec.String() != f.String() {
			t.Errorf("BER round trip %s -> %s", f, dec)
		}
	}
}

func TestParseFilterErrors(t *testing.T) {
	bad := []string{
		"", "(", "()", "(&)", "(cn)", "(cn=a", "(cn=a)(x=y)", "(!(a=1)",
	}
	for _, s := range bad {
		if _, err := ParseFilter(s); err == nil {
			t.Errorf("ParseFilter(%q) succeeded", s)
		}
	}
}

func TestParseFilterShorthandWithoutParens(t *testing.T) {
	f, err := ParseFilter("cn=John Doe")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Matches(johnDoe) {
		t.Error("shorthand filter failed")
	}
}

func TestFilterPropertyEqualityAlwaysMatchesOwnEntry(t *testing.T) {
	f := func(attr, val string) bool {
		attr = "a" + sanitizeAttr(attr)
		if val == "" {
			return true
		}
		flt := Eq(attr, val)
		getter := entryGetter(map[string][]string{attr: {val}})
		return flt.Matches(getter)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitizeAttr(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			out = append(out, c)
		}
	}
	return string(out)
}
