package ldap

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("decode %T: %v", m.Op, err)
	}
	if got.ID != m.ID {
		t.Errorf("id = %d, want %d", got.ID, m.ID)
	}
	return got
}

func TestBindRoundTrip(t *testing.T) {
	m := roundTrip(t, &Message{ID: 1, Op: &BindRequest{Version: 3, Name: "cn=admin", Password: "secret"}})
	req, ok := m.Op.(*BindRequest)
	if !ok {
		t.Fatalf("op = %T", m.Op)
	}
	if req.Version != 3 || req.Name != "cn=admin" || req.Password != "secret" {
		t.Errorf("bind = %+v", req)
	}
}

func TestUnbindRoundTrip(t *testing.T) {
	m := roundTrip(t, &Message{ID: 2, Op: &UnbindRequest{}})
	if _, ok := m.Op.(*UnbindRequest); !ok {
		t.Fatalf("op = %T", m.Op)
	}
}

func TestSearchRequestRoundTrip(t *testing.T) {
	want := &SearchRequest{
		BaseDN:     "o=Lucent",
		Scope:      ScopeWholeSubtree,
		SizeLimit:  100,
		TimeLimit:  30,
		TypesOnly:  false,
		Filter:     And(Eq("objectClass", "mcPerson"), Present("definityExtension")),
		Attributes: []string{"cn", "telephoneNumber"},
	}
	m := roundTrip(t, &Message{ID: 3, Op: want})
	got := m.Op.(*SearchRequest)
	if got.BaseDN != want.BaseDN || got.Scope != want.Scope ||
		got.SizeLimit != want.SizeLimit || got.TimeLimit != want.TimeLimit {
		t.Errorf("search = %+v", got)
	}
	if got.Filter.String() != want.Filter.String() {
		t.Errorf("filter = %s, want %s", got.Filter, want.Filter)
	}
	if !reflect.DeepEqual(got.Attributes, want.Attributes) {
		t.Errorf("attrs = %v", got.Attributes)
	}
}

func TestAddRequestRoundTrip(t *testing.T) {
	want := &AddRequest{
		DN: "cn=John Doe,o=Marketing,o=Lucent",
		Attributes: []Attribute{
			{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
			{Type: "cn", Values: []string{"John Doe"}},
			{Type: "definityExtension", Values: []string{"5-9000"}},
		},
	}
	m := roundTrip(t, &Message{ID: 4, Op: want})
	got := m.Op.(*AddRequest)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("add = %+v", got)
	}
}

func TestModifyRequestRoundTrip(t *testing.T) {
	want := &ModifyRequest{
		DN: "cn=Pat Smith,o=Lucent",
		Changes: []Change{
			{Op: ModReplace, Attribute: Attribute{Type: "telephoneNumber", Values: []string{"+1 908 582 5000"}}},
			{Op: ModDelete, Attribute: Attribute{Type: "roomNumber"}},
			{Op: ModAdd, Attribute: Attribute{Type: "mail", Values: []string{"pat@lucent.com"}}},
		},
	}
	m := roundTrip(t, &Message{ID: 5, Op: want})
	got := m.Op.(*ModifyRequest)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("modify = %+v", got)
	}
}

func TestDeleteAndModifyDNRoundTrip(t *testing.T) {
	m := roundTrip(t, &Message{ID: 6, Op: &DeleteRequest{DN: "cn=x,o=Lucent"}})
	if got := m.Op.(*DeleteRequest).DN; got != "cn=x,o=Lucent" {
		t.Errorf("del DN = %q", got)
	}

	want := &ModifyDNRequest{DN: "cn=John Doe,o=Lucent", NewRDN: "cn=John Q Doe", DeleteOldRDN: true}
	m = roundTrip(t, &Message{ID: 7, Op: want})
	if got := m.Op.(*ModifyDNRequest); !reflect.DeepEqual(got, want) {
		t.Errorf("modifyDN = %+v", got)
	}

	withSup := &ModifyDNRequest{DN: "cn=a,o=X", NewRDN: "cn=a", DeleteOldRDN: false, NewSuperior: "o=Y"}
	m = roundTrip(t, &Message{ID: 8, Op: withSup})
	if got := m.Op.(*ModifyDNRequest); got.NewSuperior != "o=Y" {
		t.Errorf("newSuperior = %q", got.NewSuperior)
	}
}

func TestCompareAbandonExtendedRoundTrip(t *testing.T) {
	m := roundTrip(t, &Message{ID: 9, Op: &CompareRequest{DN: "cn=x", Attr: "cn", Value: "x"}})
	if got := m.Op.(*CompareRequest); got.Attr != "cn" || got.Value != "x" {
		t.Errorf("compare = %+v", got)
	}

	m = roundTrip(t, &Message{ID: 10, Op: &AbandonRequest{IDToAbandon: 9}})
	if got := m.Op.(*AbandonRequest).IDToAbandon; got != 9 {
		t.Errorf("abandon = %d", got)
	}

	m = roundTrip(t, &Message{ID: 11, Op: &ExtendedRequest{Name: "1.3.6.1.4.1.1751.1", Value: []byte("quiesce")}})
	ext := m.Op.(*ExtendedRequest)
	if ext.Name != "1.3.6.1.4.1.1751.1" || string(ext.Value) != "quiesce" {
		t.Errorf("extended = %+v", ext)
	}
}

func TestResponsesRoundTrip(t *testing.T) {
	res := Result{Code: ResultNoSuchObject, MatchedDN: "o=Lucent", Message: "no such entry"}
	cases := []Op{
		&BindResponse{Result: res},
		&SearchResultDone{Result: res},
		&ModifyResponse{Result: res},
		&AddResponse{Result: res},
		&DeleteResponse{Result: res},
		&ModifyDNResponse{Result: res},
		&CompareResponse{Result: Result{Code: ResultCompareTrue}},
		&ExtendedResponse{Result: res, Name: "1.2.3", Value: []byte("v")},
	}
	for i, op := range cases {
		m := roundTrip(t, &Message{ID: int32(i), Op: op})
		if !reflect.DeepEqual(m.Op, op) {
			t.Errorf("%T round trip = %+v, want %+v", op, m.Op, op)
		}
	}
}

func TestSearchResultEntryRoundTrip(t *testing.T) {
	want := &SearchResultEntry{
		DN: "cn=Jill Lu,o=R&D,o=Lucent",
		Attributes: []Attribute{
			{Type: "cn", Values: []string{"Jill Lu"}},
			{Type: "objectClass", Values: []string{"mcPerson"}},
		},
	}
	m := roundTrip(t, &Message{ID: 12, Op: want})
	if got := m.Op.(*SearchResultEntry); !reflect.DeepEqual(got, want) {
		t.Errorf("entry = %+v", got)
	}
}

func TestResultErr(t *testing.T) {
	if (Result{Code: ResultSuccess}).Err() != nil {
		t.Error("success should have nil Err")
	}
	if (Result{Code: ResultCompareTrue}).Err() != nil {
		t.Error("compareTrue should have nil Err")
	}
	err := (Result{Code: ResultEntryAlreadyExists, Message: "dup"}).Err()
	if err == nil {
		t.Fatal("expected error")
	}
	if !IsCode(err, ResultEntryAlreadyExists) {
		t.Errorf("IsCode failed for %v", err)
	}
	if IsCode(err, ResultBusy) {
		t.Error("IsCode matched wrong code")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := ReadMessage(bytes.NewReader([]byte{0x02, 0x01, 0x05})); err == nil {
		t.Error("non-sequence message accepted")
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	// Arbitrary attribute names/values must survive the wire unchanged.
	f := func(id int32, dn, attr, v1, v2 string) bool {
		if attr == "" {
			attr = "a"
		}
		msg := &Message{ID: id, Op: &AddRequest{
			DN:         dn,
			Attributes: []Attribute{{Type: attr, Values: []string{v1, v2}}},
		}}
		var buf bytes.Buffer
		if err := msg.Write(&buf); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil || got.ID != id {
			return false
		}
		add, ok := got.Op.(*AddRequest)
		if !ok || add.DN != dn {
			return false
		}
		a := add.Attributes[0]
		return a.Type == attr && len(a.Values) == 2 && a.Values[0] == v1 && a.Values[1] == v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
