package ldapserver

import (
	"strings"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/ldap"
)

// DITHandler serves LDAP operations from an in-memory directory.DIT with the
// simple bind model the paper's prototype used (its "very simple security
// mechanism", §7): an optional root DN/password for updates, anonymous
// reads.
type DITHandler struct {
	DIT *directory.DIT
	// RootDN/RootPassword authorize updates. When RootDN is empty every
	// (even anonymous) connection may update.
	RootDN       string
	RootPassword string
	// ReadOnly rejects every update (replica servers).
	ReadOnly bool
}

// NewDITHandler wraps a DIT.
func NewDITHandler(d *directory.DIT) *DITHandler { return &DITHandler{DIT: d} }

func resultOf(err error) ldap.Result {
	if err == nil {
		return ldap.Result{Code: ldap.ResultSuccess}
	}
	code := directory.CodeOf(err)
	msg := err.Error()
	if de, ok := err.(*directory.Error); ok {
		msg = de.Msg
	}
	return ldap.Result{Code: code, Message: msg}
}

func parseDN(s string) (dn.DN, ldap.Result) {
	d, err := dn.Parse(s)
	if err != nil {
		return nil, ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: err.Error()}
	}
	return d, ldap.Result{Code: ldap.ResultSuccess}
}

// Bind implements simple authentication.
func (h *DITHandler) Bind(c *Conn, req *ldap.BindRequest) ldap.Result {
	if req.Name == "" && req.Password == "" {
		return ldap.Result{Code: ldap.ResultSuccess} // anonymous
	}
	if h.RootDN != "" && strings.EqualFold(req.Name, h.RootDN) && req.Password == h.RootPassword {
		return ldap.Result{Code: ldap.ResultSuccess}
	}
	if h.RootDN == "" {
		// No configured accounts: accept any simple bind (prototype mode).
		return ldap.Result{Code: ldap.ResultSuccess}
	}
	return ldap.Result{Code: ldap.ResultInvalidCredentials}
}

func (h *DITHandler) authorized(c *Conn) bool {
	if h.ReadOnly {
		return false
	}
	if h.RootDN == "" {
		return true
	}
	return strings.EqualFold(c.BoundDN, h.RootDN)
}

func deny() ldap.Result {
	return ldap.Result{Code: ldap.ResultInsufficientAccess, Message: "updates not permitted here"}
}

// Search streams matching entries, applying the request's attribute
// selection and typesOnly flag.
func (h *DITHandler) Search(c *Conn, req *ldap.SearchRequest, send func(*ldap.SearchResultEntry) error) ldap.Result {
	base, res := parseDN(req.BaseDN)
	if res.Code != ldap.ResultSuccess {
		return res
	}
	entries, err := h.DIT.Search(base, req.Scope, req.Filter, req.SizeLimit)
	final := resultOf(err)
	if final.Code != ldap.ResultSuccess && final.Code != ldap.ResultSizeLimitExceeded {
		return final
	}
	for _, e := range entries {
		out := &ldap.SearchResultEntry{DN: e.DN.String()}
		e.Attrs.EachSorted(func(name string, values []string) {
			if !selectAttr(req.Attributes, name) {
				return
			}
			attr := ldap.Attribute{Type: name}
			if !req.TypesOnly {
				attr.Values = append(attr.Values, values...)
			}
			out.Attributes = append(out.Attributes, attr)
		})
		if err := send(out); err != nil {
			return ldap.Result{Code: ldap.ResultOther, Message: err.Error()}
		}
	}
	return final
}

// selectAttr implements the LDAP attribute-selection list: empty or "*"
// selects everything; "1.1" selects nothing.
func selectAttr(requested []string, name string) bool {
	if len(requested) == 0 {
		return true
	}
	for _, r := range requested {
		switch r {
		case "*":
			return true
		case "1.1":
			continue
		default:
			if strings.EqualFold(r, name) {
				return true
			}
		}
	}
	return false
}

// Add creates an entry.
func (h *DITHandler) Add(c *Conn, req *ldap.AddRequest) ldap.Result {
	if !h.authorized(c) {
		return deny()
	}
	name, res := parseDN(req.DN)
	if res.Code != ldap.ResultSuccess {
		return res
	}
	attrs := directory.NewAttrs()
	for _, a := range req.Attributes {
		for _, v := range a.Values {
			attrs.Add(a.Type, v)
		}
	}
	return resultOf(h.DIT.Add(name, attrs))
}

// Delete removes a leaf entry.
func (h *DITHandler) Delete(c *Conn, req *ldap.DeleteRequest) ldap.Result {
	if !h.authorized(c) {
		return deny()
	}
	name, res := parseDN(req.DN)
	if res.Code != ldap.ResultSuccess {
		return res
	}
	return resultOf(h.DIT.Delete(name))
}

// Modify applies changes to one entry.
func (h *DITHandler) Modify(c *Conn, req *ldap.ModifyRequest) ldap.Result {
	if !h.authorized(c) {
		return deny()
	}
	name, res := parseDN(req.DN)
	if res.Code != ldap.ResultSuccess {
		return res
	}
	return resultOf(h.DIT.Modify(name, req.Changes))
}

// ModifyDN renames an entry.
func (h *DITHandler) ModifyDN(c *Conn, req *ldap.ModifyDNRequest) ldap.Result {
	if !h.authorized(c) {
		return deny()
	}
	name, res := parseDN(req.DN)
	if res.Code != ldap.ResultSuccess {
		return res
	}
	if req.NewSuperior != "" {
		return ldap.Result{Code: ldap.ResultUnwillingToPerform, Message: "newSuperior not supported"}
	}
	newDN, err := dn.Parse(req.NewRDN)
	if err != nil || newDN.Depth() != 1 {
		return ldap.Result{Code: ldap.ResultInvalidDNSyntax, Message: "bad newRDN"}
	}
	return resultOf(h.DIT.ModifyDN(name, newDN.RDN(), req.DeleteOldRDN))
}

// Compare tests an attribute value assertion.
func (h *DITHandler) Compare(c *Conn, req *ldap.CompareRequest) ldap.Result {
	name, res := parseDN(req.DN)
	if res.Code != ldap.ResultSuccess {
		return res
	}
	match, err := h.DIT.Compare(name, req.Attr, req.Value)
	if err != nil {
		return resultOf(err)
	}
	if match {
		return ldap.Result{Code: ldap.ResultCompareTrue}
	}
	return ldap.Result{Code: ldap.ResultCompareFalse}
}

// Extended rejects unknown extensions; the plain directory server has none
// (quiesce lives in LTAP).
func (h *DITHandler) Extended(c *Conn, req *ldap.ExtendedRequest) *ldap.ExtendedResponse {
	return &ldap.ExtendedResponse{Result: ldap.Result{
		Code: ldap.ResultProtocolError, Message: "unsupported extended operation " + req.Name}}
}
