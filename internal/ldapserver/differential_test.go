package ldapserver

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"metacomm/internal/directory"
	"metacomm/internal/ldap"
	"metacomm/internal/mcschema"
)

// TestAcceptLoopDifferential replays one scripted op corpus — pipelined
// bursts, torn/partial frames, an oversize request, mid-op disconnects —
// against a goroutine-mode and an epoll-mode server and asserts the
// response byte streams are identical per scenario and the WireStats op
// counts are identical in total. This is the contract the reactor was built
// to: not "mostly compatible", the same bytes.
func TestAcceptLoopDifferential(t *testing.T) {
	if !reactorSupported {
		t.Skip("epoll reactor not supported on this platform")
	}
	scenarios := differentialScenarios()
	type run struct {
		streams [][]byte
		stats   WireStats
	}
	runMode := func(mode string) run {
		t.Helper()
		d := directory.New(mcschema.New())
		srv := NewServer(NewDITHandler(d))
		srv.AcceptLoop = mode
		srv.MaxMessageSize = 1 << 16
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		var streams [][]byte
		for _, sc := range scenarios {
			streams = append(streams, sc.play(t, mode, addr.String()))
		}
		// Every scenario's stream ended in EOF, and the server counts before
		// it closes, so the counters are final here.
		return run{streams: streams, stats: srv.WireStats()}
	}

	gor := runMode(AcceptLoopGoroutine)
	epo := runMode(AcceptLoopEpoll)

	for i, sc := range scenarios {
		if !bytes.Equal(gor.streams[i], epo.streams[i]) {
			t.Errorf("scenario %q: response streams differ:\n goroutine (%d bytes): %x\n epoll     (%d bytes): %x",
				sc.name, len(gor.streams[i]), gor.streams[i], len(epo.streams[i]), epo.streams[i])
		}
	}
	g, e := gor.stats, epo.stats
	if g.MessagesRead != e.MessagesRead {
		t.Errorf("MessagesRead: goroutine=%d epoll=%d", g.MessagesRead, e.MessagesRead)
	}
	if g.ResponsesWritten != e.ResponsesWritten {
		t.Errorf("ResponsesWritten: goroutine=%d epoll=%d", g.ResponsesWritten, e.ResponsesWritten)
	}
	if g.OversizeRejected != e.OversizeRejected {
		t.Errorf("OversizeRejected: goroutine=%d epoll=%d", g.OversizeRejected, e.OversizeRejected)
	}
	if g.MessagesRead == 0 || g.ResponsesWritten == 0 {
		t.Fatalf("corpus exercised nothing: %+v", g)
	}
}

// diffStep is one client action in a scenario script.
type diffStep struct {
	send       []byte
	pause      time.Duration // settle time before the next segment (torn frames)
	closeWrite bool          // half-close after sending: mid-op disconnect
}

type diffScenario struct {
	name  string
	steps []diffStep
}

// play runs the script on a fresh connection and returns everything the
// server sent back until it closed the connection.
func (sc diffScenario) play(t *testing.T, mode, addr string) []byte {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("%s/%s: dial: %v", mode, sc.name, err)
	}
	defer nc.Close()
	for _, st := range sc.steps {
		if len(st.send) > 0 {
			if _, err := nc.Write(st.send); err != nil {
				t.Fatalf("%s/%s: write: %v", mode, sc.name, err)
			}
		}
		if st.pause > 0 {
			time.Sleep(st.pause)
		}
		if st.closeWrite {
			if err := nc.(*net.TCPConn).CloseWrite(); err != nil {
				t.Fatalf("%s/%s: close-write: %v", mode, sc.name, err)
			}
		}
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	stream, err := io.ReadAll(nc)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		t.Fatalf("%s/%s: read: %v", mode, sc.name, err)
	}
	return stream
}

func encodeMsg(id int32, op ldap.Op) []byte {
	return (&ldap.Message{ID: id, Op: op}).AppendTo(nil)
}

func differentialScenarios() []diffScenario {
	unbind := encodeMsg(99, &ldap.UnbindRequest{})
	baseSearch := encodeMsg(2, &ldap.SearchRequest{BaseDN: "o=Lucent", Scope: ldap.ScopeBaseObject})

	// Scenario state carries across the corpus in order (the org added first
	// exists for everything after), so both modes see the same directory.
	var crud []byte
	crud = append(crud, encodeMsg(1, &ldap.AddRequest{DN: "o=Lucent", Attributes: []ldap.Attribute{
		{Type: "objectClass", Values: []string{"organization"}}}})...)
	crud = append(crud, encodeMsg(2, &ldap.AddRequest{DN: "cn=Ann Example,o=Lucent", Attributes: []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson"}},
		{Type: "sn", Values: []string{"Example"}},
		{Type: "telephoneNumber", Values: []string{"+1 908 582 1234"}}}})...)
	crud = append(crud, encodeMsg(3, &ldap.SearchRequest{BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree})...)
	crud = append(crud, encodeMsg(4, &ldap.CompareRequest{DN: "cn=Ann Example,o=Lucent", Attr: "sn", Value: "Example"})...)
	crud = append(crud, encodeMsg(5, &ldap.ModifyRequest{DN: "cn=Ann Example,o=Lucent", Changes: []ldap.Change{
		{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "telephoneNumber", Values: []string{"+1 908 582 5678"}}}}})...)
	crud = append(crud, encodeMsg(6, &ldap.ExtendedRequest{Name: "1.2.3.4.5", Value: []byte("?")})...)
	crud = append(crud, encodeMsg(7, &ldap.DeleteRequest{DN: "cn=Ann Example,o=Lucent"})...)
	crud = append(crud, unbind...)

	var burst []byte
	for i := int32(1); i <= 32; i++ {
		burst = append(burst, encodeMsg(i, &ldap.SearchRequest{
			BaseDN: "o=Lucent", Scope: ldap.ScopeBaseObject})...)
	}
	burst = append(burst, unbind...)

	// A search torn into 3-byte segments with settle pauses: arrives as many
	// separate readiness events / blocking reads.
	var torn []diffStep
	tornReq := append(append([]byte{}, baseSearch...), unbind...)
	for i := 0; i < len(tornReq); i += 3 {
		end := i + 3
		if end > len(tornReq) {
			end = len(tornReq)
		}
		torn = append(torn, diffStep{send: tornReq[i:end], pause: 2 * time.Millisecond})
	}

	// Pipeline with an unbind in the middle: the op after the unbind must be
	// discarded unserved by both modes.
	var midUnbind []byte
	midUnbind = append(midUnbind, baseSearch...)
	midUnbind = append(midUnbind, unbind...)
	midUnbind = append(midUnbind, encodeMsg(3, &ldap.SearchRequest{
		BaseDN: "o=Lucent", Scope: ldap.ScopeBaseObject})...)

	return []diffScenario{
		{name: "crud", steps: []diffStep{{send: crud}}},
		{name: "pipelined-burst", steps: []diffStep{{send: burst}}},
		{name: "torn-frames", steps: torn},
		{name: "oversize", steps: []diffStep{
			// SEQUENCE declaring 16 MB against the 64 KB limit: unsolicited
			// notice-of-disconnection, then close.
			{send: []byte{0x30, 0x84, 0x01, 0x00, 0x00, 0x00}}}},
		{name: "unbind-mid-pipeline", steps: []diffStep{{send: midUnbind}}},
		{name: "partial-frame-disconnect", steps: []diffStep{
			{send: baseSearch[:4], pause: 5 * time.Millisecond, closeWrite: true}}},
		{name: "complete-op-disconnect", steps: []diffStep{
			{send: baseSearch, closeWrite: true}}},
		{name: "malformed-length", steps: []diffStep{
			{send: []byte{0x30, 0x85, 0x01, 0x02, 0x03, 0x04, 0x05}}}},
	}
}
