package ldapserver

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"metacomm/internal/ber"
	"metacomm/internal/ldap"
)

// TestEpollAcceptLoopSuite re-runs the full server test suite — end-to-end
// ops, auth, schema errors, pipelining coalescing, oversize
// notice-of-disconnection, panic recovery — with every test server in epoll
// mode. The contracts must hold unchanged on both serving paths.
func TestEpollAcceptLoopSuite(t *testing.T) {
	if !reactorSupported {
		t.Skip("epoll reactor not supported on this platform")
	}
	old := testAcceptLoop
	testAcceptLoop = AcceptLoopEpoll
	defer func() { testAcceptLoop = old }()
	for name, fn := range map[string]func(*testing.T){
		"EndToEndAddSearch":          TestEndToEndAddSearch,
		"EndToEndModifyDeleteDN":     TestEndToEndModifyDeleteModifyDN,
		"CompareOverWire":            TestCompareOverWire,
		"AuthRequiredForUpdates":     TestAuthRequiredForUpdates,
		"SchemaViolations":           TestSchemaViolationsSurfaceOverWire,
		"AttributeSelection":         TestAttributeSelection,
		"InvalidDN":                  TestInvalidDNSurfacesCleanly,
		"ManyClientsConcurrently":    TestManyClientsConcurrently,
		"UnknownExtendedOp":          TestUnknownExtendedOp,
		"SizeLimitPartialResults":    TestSizeLimitReturnsPartialResults,
		"OversizeRequestRejected":    TestOversizeRequestRejected,
		"OversizeDefaultLimit":       TestOversizeDefaultLimit,
		"PipelinedResponsesCoalesce": TestPipelinedResponsesCoalesce,
		"HandlerPanicRecovery":       TestHandlerPanicBecomesOperationsError,
	} {
		t.Run(name, fn)
	}
}

// TestTornFramesAcrossEvents drips a request a few bytes at a time (forcing
// a flush between segments so each arrives as its own readiness event) and
// expects a correct response: the reactor must reassemble partial frames
// across events.
func TestTornFramesAcrossEvents(t *testing.T) {
	if !reactorSupported {
		t.Skip("epoll reactor not supported on this platform")
	}
	old := testAcceptLoop
	testAcceptLoop = AcceptLoopEpoll
	defer func() { testAcceptLoop = old }()
	_, addr := startWireServer(t, 0)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	req := (&ldap.Message{ID: 1, Op: &ldap.SearchRequest{
		BaseDN: "o=Nowhere", Scope: ldap.ScopeBaseObject}}).AppendTo(nil)
	for i := 0; i < len(req); i += 3 {
		end := i + 3
		if end > len(req) {
			end = len(req)
		}
		if _, err := nc.Write(req[i:end]); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	msg, err := ldap.NewReader(nc).ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	done, ok := msg.Op.(*ldap.SearchResultDone)
	if !ok || done.Result.Code != ldap.ResultNoSuchObject {
		t.Fatalf("response = %#v, want noSuchObject SearchResultDone", msg.Op)
	}
}

// TestManyIdleConns is the O(workers)-not-O(conns) smoke: ~10k held-open
// connections (bounded by RLIMIT_NOFILE — client and server share this
// process) each issue one operation, then sit idle. In epoll mode the
// goroutine count must stay bounded near the worker pool size, nowhere near
// the connection count, and idle buffers must be back in the pools.
func TestManyIdleConns(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-connection smoke")
	}
	if !reactorSupported {
		t.Skip("epoll reactor not supported on this platform")
	}
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		t.Fatal(err)
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
		syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
	// Two fds per connection in-process (client + server), plus headroom
	// for the DIT, test runner and epoll plumbing.
	target := (int(rl.Cur) - 512) / 2
	if target > 10000 {
		target = 10000
	}
	if target < 1000 {
		t.Skipf("RLIMIT_NOFILE %d too low for a many-conns smoke", rl.Cur)
	}

	old := testAcceptLoop
	testAcceptLoop = AcceptLoopEpoll
	defer func() { testAcceptLoop = old }()
	srv, addr := startWireServer(t, 0)

	// Raw clients: no ldapclient.Conn per-connection reader buffers, so the
	// client side stays cheap and (critically) spawns no goroutines that
	// would pollute the count we are asserting on.
	req := (&ldap.Message{ID: 1, Op: &ldap.SearchRequest{
		BaseDN: "o=Nowhere", Scope: ldap.ScopeBaseObject}}).AppendTo(nil)
	conns := make([]net.Conn, 0, target)
	var connsMu sync.Mutex
	const dialers = 64
	var wg sync.WaitGroup
	errs := make(chan error, dialers)
	for d := 0; d < dialers; d++ {
		share := target / dialers
		if d < target%dialers {
			share++
		}
		wg.Add(1)
		go func(share int) {
			defer wg.Done()
			for i := 0; i < share; i++ {
				nc, err := net.Dial("tcp", addr)
				if err != nil {
					errs <- fmt.Errorf("dial: %w", err)
					return
				}
				if _, err := nc.Write(req); err != nil {
					errs <- fmt.Errorf("write: %w", err)
					return
				}
				if err := readOneMessage(nc); err != nil {
					errs <- fmt.Errorf("read: %w", err)
					return
				}
				connsMu.Lock()
				conns = append(conns, nc)
				connsMu.Unlock()
			}
		}(share)
	}
	wg.Wait()
	defer func() {
		for _, nc := range conns {
			nc.Close()
		}
	}()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	ws := srv.WireStats()
	if ws.Reactor.Conns != uint64(target) {
		t.Errorf("reactor conns = %d, want %d", ws.Reactor.Conns, target)
	}
	if ws.MessagesRead != uint64(target) {
		t.Errorf("messages read = %d, want %d", ws.MessagesRead, target)
	}

	// Transient overflow workers decay once the ramp's op burst is served;
	// poll until the goroutine count settles under the bound.
	bound := 100
	deadline := time.Now().Add(10 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n < bound || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if n >= bound {
		t.Errorf("goroutines = %d with %d idle conns; want O(workers) < %d", n, target, bound)
	}
	t.Logf("%d idle conns: goroutines=%d reactor workers=%d frames/wakeup=%.1f",
		target, n, ws.Reactor.Workers, ws.Reactor.FramesPerWakeup())
}

// readOneMessage consumes exactly one BER frame from nc using a small
// throwaway buffer (search against a missing base returns a single done).
func readOneMessage(nc net.Conn) error {
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	defer nc.SetReadDeadline(time.Time{})
	buf := make([]byte, 0, 256)
	for {
		size, ok, err := ber.FrameSize(buf, 0)
		if err != nil {
			return err
		}
		if ok && len(buf) >= size {
			return nil
		}
		var chunk [256]byte
		n, err := nc.Read(chunk[:])
		if err != nil {
			return err
		}
		buf = append(buf, chunk[:n]...)
	}
}
