package ldapserver

import (
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"metacomm/internal/directory"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/mcschema"
)

// startWireServer brings up a DIT server and returns it together with its
// address, so tests can open raw connections and inspect wire counters.
// maxMsg is applied before Start (the field is read by connection
// goroutines and must not change once serving); 0 keeps the default.
func startWireServer(t testing.TB, maxMsg int) (*Server, string) {
	t.Helper()
	d := directory.New(mcschema.New())
	srv := NewServer(NewDITHandler(d))
	srv.AcceptLoop = testAcceptLoop
	srv.MaxMessageSize = maxMsg
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, addr.String()
}

// TestOversizeRequestRejected sends a message declaring a length over the
// server's limit and expects the LDAP unsolicited notice of disconnection
// with protocolError, then a closed connection — and no attempt to read or
// allocate the declared content.
func TestOversizeRequestRejected(t *testing.T) {
	srv, addr := startWireServer(t, 1<<16) // 64 KB limit for the test

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// SEQUENCE, long-form length declaring 16 MB of content. Only the header
	// is sent; a server that tried to read the content would block and time
	// the test out instead of answering.
	if _, err := nc.Write([]byte{0x30, 0x84, 0x01, 0x00, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	rd := ldap.NewReader(nc)
	msg, err := rd.ReadMessage()
	if err != nil {
		t.Fatalf("reading unsolicited notice: %v", err)
	}
	if msg.ID != 0 {
		t.Errorf("notice message ID = %d, want 0", msg.ID)
	}
	ext, ok := msg.Op.(*ldap.ExtendedResponse)
	if !ok {
		t.Fatalf("notice op = %T, want ExtendedResponse", msg.Op)
	}
	if ext.Name != ldap.NoticeOfDisconnection {
		t.Errorf("notice OID = %q, want %q", ext.Name, ldap.NoticeOfDisconnection)
	}
	if ext.Result.Code != ldap.ResultProtocolError {
		t.Errorf("notice code = %v, want protocolError", ext.Result.Code)
	}
	// The server closes the connection after the notice.
	if _, err := rd.ReadMessage(); err != io.EOF {
		t.Errorf("read after notice = %v, want EOF", err)
	}
	if got := srv.WireStats().OversizeRejected; got != 1 {
		t.Errorf("OversizeRejected = %d, want 1", got)
	}
}

// TestOversizeDefaultLimit checks the default 4 MB bound applies without any
// configuration.
func TestOversizeDefaultLimit(t *testing.T) {
	_, addr := startWireServer(t, 0)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Declares 8 MB, over the 4 MB default.
	if _, err := nc.Write([]byte{0x30, 0x84, 0x00, 0x80, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	rd := ldap.NewReader(nc)
	msg, err := rd.ReadMessage()
	if err != nil {
		t.Fatalf("reading unsolicited notice: %v", err)
	}
	ext, ok := msg.Op.(*ldap.ExtendedResponse)
	if !ok || ext.Result.Code != ldap.ResultProtocolError {
		t.Fatalf("notice = %#v, want protocolError extended response", msg.Op)
	}
}

// TestPipelinedResponsesCoalesce sends a burst of requests in one client
// write and checks the server answered them in far fewer buffer flushes than
// responses — the per-connection pipelining payoff.
func TestPipelinedResponsesCoalesce(t *testing.T) {
	srv, addr := startWireServer(t, 0)
	c, err := ldapclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Add("o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"organization"}}}); err != nil {
		t.Fatal(err)
	}

	const k = 64
	before := srv.WireStats()
	ops := make([]ldap.Op, k)
	for i := range ops {
		ops[i] = &ldap.SearchRequest{BaseDN: "o=Lucent", Scope: ldap.ScopeBaseObject}
	}
	for i, r := range c.Pipeline(ops) {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
		if len(r.Entries) != 1 {
			t.Fatalf("op %d: %d entries", i, len(r.Entries))
		}
	}
	after := srv.WireStats()
	// Each base search is an entry plus a done: 2k responses total.
	if got := after.ResponsesWritten - before.ResponsesWritten; got != 2*k {
		t.Errorf("responses = %d, want %d", got, 2*k)
	}
	// The whole burst arrives in one client write, so the server should
	// answer it in a handful of flushes, not one per request. The bound is
	// deliberately loose: TCP may split the burst across segments.
	if got := after.Flushes - before.Flushes; got > k/2 {
		t.Errorf("flushes = %d for %d pipelined requests; coalescing broken", got, k)
	}
}

// TestServerEchoAllocs guards the per-request allocation count of the full
// round trip (client encode, server decode, handler, response encode, client
// decode) against regression. The bound is process-wide and generous; the
// zero-copy decode path keeps the steady state well under it.
func TestServerEchoAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	_, addr := startWireServer(t, 0)
	c, err := ldapclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Add("o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"organization"}}}); err != nil {
		t.Fatal(err)
	}
	req := &ldap.SearchRequest{BaseDN: "o=Lucent", Scope: ldap.ScopeBaseObject}
	// Warm both ends' reusable buffers.
	for i := 0; i < 16; i++ {
		if _, err := c.Search(req); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 400
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		if _, err := c.Search(req); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	perOp := float64(after.Mallocs-before.Mallocs) / rounds
	t.Logf("allocs/roundtrip (process-wide) = %.1f", perOp)
	// Measured ~103 with the zero-copy reader on both ends (decode itself is
	// allocation-free; what remains is request/response construction and the
	// client's owned Entry copies). The pre-reader decode paths added ~46 on
	// top, so 160 catches a reintroduced per-message decode allocation while
	// riding out scheduler noise.
	if perOp > 160 {
		t.Errorf("allocs/roundtrip = %.1f, want <= 160", perOp)
	}
}
