package ldapserver

import (
	"testing"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/mcschema"
)

// panicHandler panics on updates and serves reads normally.
type panicHandler struct{ DITHandler }

func (h *panicHandler) Modify(c *Conn, req *ldap.ModifyRequest) ldap.Result {
	panic("handler bug")
}

// TestHandlerPanicBecomesOperationsError: a panicking handler must not kill
// the connection or the server; the client gets operationsError and the
// connection stays usable.
func TestHandlerPanicBecomesOperationsError(t *testing.T) {
	h := &panicHandler{}
	h.DIT = newTestDIT(t)
	srv := NewServer(h)
	srv.AcceptLoop = testAcceptLoop
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := ldapclient.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	err = c.Modify("o=Lucent", []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "o", Values: []string{"x"}}}})
	if !ldap.IsCode(err, ldap.ResultOperationsError) {
		t.Fatalf("err = %v", err)
	}
	// The same connection still serves requests.
	if _, err := c.Search(&ldap.SearchRequest{BaseDN: "o=Lucent", Scope: ldap.ScopeBaseObject}); err != nil {
		t.Fatalf("connection dead after panic: %v", err)
	}
}

// newTestDIT builds a DIT with just the suffix entry.
func newTestDIT(t *testing.T) *directory.DIT {
	t.Helper()
	d := directory.New(mcschema.New())
	attrs := directory.NewAttrs()
	attrs.Put("objectClass", "organization")
	if err := d.Add(dn.MustParse("o=Lucent"), attrs); err != nil {
		t.Fatal(err)
	}
	return d
}
