package ldapserver

import (
	"fmt"
	"sync"
	"testing"

	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/mcschema"
)

// startServer brings up a schema-validated DIT server on a random port and
// returns a connected client.
func startServer(t testing.TB, rootDN, rootPW string) (*ldapclient.Conn, *directory.DIT) {
	t.Helper()
	d := directory.New(mcschema.New())
	h := NewDITHandler(d)
	h.RootDN, h.RootPassword = rootDN, rootPW
	srv := NewServer(h)
	srv.AcceptLoop = testAcceptLoop
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := ldapclient.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, d
}

// testAcceptLoop is the accept-loop mode every test server starts with.
// TestEpollAcceptLoopSuite flips it to "epoll" and re-runs the suite, so
// both serving paths face the same contracts.
var testAcceptLoop = AcceptLoopGoroutine

func seedTree(t testing.TB, c *ldapclient.Conn) {
	t.Helper()
	adds := []struct {
		dn    string
		attrs []ldap.Attribute
	}{
		{"o=Lucent", []ldap.Attribute{{Type: "objectClass", Values: []string{"organization"}}}},
		{"o=Marketing,o=Lucent", []ldap.Attribute{{Type: "objectClass", Values: []string{"organization"}}}},
		{"cn=John Doe,o=Marketing,o=Lucent", []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
			{Type: "sn", Values: []string{"Doe"}},
			{Type: "telephoneNumber", Values: []string{"+1 908 582 9000"}},
			{Type: "definityExtension", Values: []string{"5-9000"}},
		}},
	}
	for _, a := range adds {
		if err := c.Add(a.dn, a.attrs); err != nil {
			t.Fatalf("add %s: %v", a.dn, err)
		}
	}
}

func TestEndToEndAddSearch(t *testing.T) {
	c, _ := startServer(t, "", "")
	seedTree(t, c)

	entries, err := c.Search(&ldap.SearchRequest{
		BaseDN: "o=Lucent",
		Scope:  ldap.ScopeWholeSubtree,
		Filter: ldap.Eq("objectClass", "mcPerson"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	if e.First("telephoneNumber") != "+1 908 582 9000" {
		t.Errorf("telephoneNumber = %q", e.First("telephoneNumber"))
	}
	if e.First("definityExtension") != "5-9000" {
		t.Errorf("definityExtension = %q", e.First("definityExtension"))
	}
}

func TestEndToEndModifyDeleteModifyDN(t *testing.T) {
	c, d := startServer(t, "", "")
	seedTree(t, c)
	name := "cn=John Doe,o=Marketing,o=Lucent"

	if err := c.Modify(name, []ldap.Change{
		{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"2C-401"}}},
	}); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(dn.MustParse(name))
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs.First("roomNumber") != "2C-401" {
		t.Errorf("roomNumber = %q", got.Attrs.First("roomNumber"))
	}

	if err := c.ModifyDN(name, "cn=John Q Doe", true); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(dn.MustParse("cn=John Q Doe,o=Marketing,o=Lucent")); err != nil {
		t.Fatalf("renamed entry missing: %v", err)
	}

	if err := c.Delete("cn=John Q Doe,o=Marketing,o=Lucent"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("cn=John Q Doe,o=Marketing,o=Lucent"); !ldap.IsCode(err, ldap.ResultNoSuchObject) {
		t.Errorf("double delete err = %v", err)
	}
}

func TestCompareOverWire(t *testing.T) {
	c, _ := startServer(t, "", "")
	seedTree(t, c)
	match, err := c.Compare("cn=John Doe,o=Marketing,o=Lucent", "definityExtension", "5-9000")
	if err != nil || !match {
		t.Errorf("compare true: %v %v", match, err)
	}
	match, err = c.Compare("cn=John Doe,o=Marketing,o=Lucent", "definityExtension", "5-9999")
	if err != nil || match {
		t.Errorf("compare false: %v %v", match, err)
	}
}

func TestAuthRequiredForUpdates(t *testing.T) {
	c, _ := startServer(t, "cn=admin,o=Lucent", "secret")
	err := c.Add("o=Lucent", []ldap.Attribute{{Type: "objectClass", Values: []string{"organization"}}})
	if !ldap.IsCode(err, ldap.ResultInsufficientAccess) {
		t.Fatalf("anonymous add err = %v", err)
	}
	if err := c.Bind("cn=admin,o=Lucent", "wrong"); !ldap.IsCode(err, ldap.ResultInvalidCredentials) {
		t.Fatalf("bad bind err = %v", err)
	}
	if err := c.Bind("cn=admin,o=Lucent", "secret"); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("o=Lucent", []ldap.Attribute{{Type: "objectClass", Values: []string{"organization"}}}); err != nil {
		t.Fatal(err)
	}
	// Anonymous search still allowed.
	if _, err := c.Search(&ldap.SearchRequest{BaseDN: "o=Lucent", Scope: ldap.ScopeBaseObject}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaViolationsSurfaceOverWire(t *testing.T) {
	c, _ := startServer(t, "", "")
	seedTree(t, c)
	err := c.Add("cn=No SN,o=Marketing,o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson"}},
	})
	if !ldap.IsCode(err, ldap.ResultObjectClassViolation) {
		t.Errorf("err = %v", err)
	}
}

func TestAttributeSelection(t *testing.T) {
	c, _ := startServer(t, "", "")
	seedTree(t, c)
	e, err := c.SearchOne(&ldap.SearchRequest{
		BaseDN:     "cn=John Doe,o=Marketing,o=Lucent",
		Scope:      ldap.ScopeBaseObject,
		Attributes: []string{"cn", "telephoneNumber"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Attributes) != 2 {
		t.Errorf("attributes = %v", e.Attributes)
	}
	if e.Attr("definityExtension") != nil {
		t.Error("unselected attribute returned")
	}
	// typesOnly returns names without values.
	e, err = c.SearchOne(&ldap.SearchRequest{
		BaseDN:    "cn=John Doe,o=Marketing,o=Lucent",
		Scope:     ldap.ScopeBaseObject,
		TypesOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range e.Attributes {
		if len(a.Values) != 0 {
			t.Errorf("typesOnly returned values for %s", a.Type)
		}
	}
}

func TestInvalidDNSurfacesCleanly(t *testing.T) {
	c, _ := startServer(t, "", "")
	err := c.Add("not-a-dn", []ldap.Attribute{{Type: "objectClass", Values: []string{"organization"}}})
	if !ldap.IsCode(err, ldap.ResultInvalidDNSyntax) {
		t.Errorf("err = %v", err)
	}
	_, err = c.Search(&ldap.SearchRequest{BaseDN: "no-equals-sign", Scope: ldap.ScopeBaseObject})
	if !ldap.IsCode(err, ldap.ResultInvalidDNSyntax) {
		t.Errorf("search err = %v", err)
	}
}

func TestManyClientsConcurrently(t *testing.T) {
	c, _ := startServer(t, "", "")
	seedTree(t, c)
	addr := serverAddrOf(t, c)
	_ = addr

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("cn=Worker %d,o=Marketing,o=Lucent", i)
			if err := c.Add(name, []ldap.Attribute{
				{Type: "objectClass", Values: []string{"mcPerson"}},
				{Type: "sn", Values: []string{"Worker"}},
			}); err != nil {
				errs <- err
				return
			}
			if _, err := c.Search(&ldap.SearchRequest{BaseDN: name, Scope: ldap.ScopeBaseObject}); err != nil {
				errs <- err
				return
			}
			errs <- c.Delete(name)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// serverAddrOf is a placeholder keeping the test structure explicit; the
// shared client already serializes requests internally.
func serverAddrOf(t *testing.T, c *ldapclient.Conn) string { return "" }

func TestUnknownExtendedOp(t *testing.T) {
	c, _ := startServer(t, "", "")
	_, err := c.Extended("9.9.9.9", nil)
	if !ldap.IsCode(err, ldap.ResultProtocolError) {
		t.Errorf("err = %v", err)
	}
}

func TestSizeLimitReturnsPartialResults(t *testing.T) {
	c, _ := startServer(t, "", "")
	seedTree(t, c)
	for i := 0; i < 5; i++ {
		if err := c.Add(fmt.Sprintf("cn=Bulk %d,o=Marketing,o=Lucent", i), []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson"}},
			{Type: "sn", Values: []string{"Bulk"}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := c.Search(&ldap.SearchRequest{
		BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.Eq("objectClass", "mcPerson"), SizeLimit: 3,
	})
	if !ldap.IsCode(err, ldap.ResultSizeLimitExceeded) {
		t.Fatalf("err = %v", err)
	}
	if len(entries) != 3 {
		t.Errorf("partial results = %d, want 3", len(entries))
	}
}
