// Package ldapserver provides the TCP front end that speaks the LDAP v3
// protocol for any Handler. Both the MetaComm directory server (a DIT
// handler) and the LTAP trigger gateway (a proxying handler that "pretends
// to be an LDAP server", paper §4.3) are Handlers behind this server.
package ldapserver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"metacomm/internal/ldap"
)

// Conn carries per-connection state visible to handlers.
type Conn struct {
	// BoundDN is the DN established by the last successful bind ("" when
	// anonymous).
	BoundDN string
	// RemoteAddr is the peer address, for logging.
	RemoteAddr string
	// Data lets gateway handlers stash per-connection state (e.g. LTAP
	// persistent-connection mode).
	Data map[string]any
}

// Handler responds to LDAP operations. Implementations must be safe for
// concurrent use: the server runs one goroutine per connection.
type Handler interface {
	Bind(c *Conn, req *ldap.BindRequest) ldap.Result
	Search(c *Conn, req *ldap.SearchRequest, send func(*ldap.SearchResultEntry) error) ldap.Result
	Add(c *Conn, req *ldap.AddRequest) ldap.Result
	Delete(c *Conn, req *ldap.DeleteRequest) ldap.Result
	Modify(c *Conn, req *ldap.ModifyRequest) ldap.Result
	ModifyDN(c *Conn, req *ldap.ModifyDNRequest) ldap.Result
	Compare(c *Conn, req *ldap.CompareRequest) ldap.Result
	Extended(c *Conn, req *ldap.ExtendedRequest) *ldap.ExtendedResponse
}

// Server accepts LDAP connections and dispatches operations to a Handler.
type Server struct {
	Handler Handler
	// ErrorLog receives connection-level errors; nil discards them.
	ErrorLog *log.Logger

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server for the handler.
func NewServer(h Handler) *Server {
	return &Server{Handler: h, conns: map[net.Conn]bool{}}
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the background.
// It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return nil, errors.New("ldapserver: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(l)
	}()
	return l.Addr(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(c)
		}()
	}
}

// Close stops the listener and closes all live connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.ErrorLog != nil {
		s.ErrorLog.Printf(format, args...)
	}
}

func (s *Server) serveConn(nc net.Conn) {
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()
	conn := &Conn{RemoteAddr: nc.RemoteAddr().String(), Data: map[string]any{}}
	// BER elements are read byte-at-a-time for the header, so an
	// unbuffered net.Conn costs several syscalls per message; the buffered
	// reader makes it one. The buffered writer coalesces a whole
	// operation's responses — every streamed search entry plus the final
	// result — into a single Write, flushed once per request below.
	br := bufio.NewReaderSize(nc, 4096)
	bw := bufio.NewWriterSize(nc, 4096)
	// One reusable encode buffer per connection: responses append into it
	// before entering the write buffer. The connection's goroutine is the
	// only writer, so no locking is needed.
	wbuf := make([]byte, 0, 4096)
	write := func(m *ldap.Message) error {
		wbuf = m.AppendTo(wbuf[:0])
		_, err := bw.Write(wbuf)
		return err
	}
	for {
		msg, err := ldap.ReadMessage(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("ldapserver: %s: read: %v", conn.RemoteAddr, err)
			}
			return
		}
		if _, ok := msg.Op.(*ldap.UnbindRequest); ok {
			return
		}
		resp := s.dispatch(conn, write, msg)
		if resp == nil {
			continue // abandon has no response (and nothing to flush)
		}
		err = write(resp)
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			s.logf("ldapserver: %s: write: %v", conn.RemoteAddr, err)
			return
		}
	}
}

// dispatch runs one operation and returns the final response message (search
// entries are streamed through write, the connection's buffered encoder).
func (s *Server) dispatch(conn *Conn, write func(*ldap.Message) error, msg *ldap.Message) (out *ldap.Message) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("ldapserver: %s: handler panic: %v", conn.RemoteAddr, r)
			out = &ldap.Message{ID: msg.ID, Op: opError(msg.Op, ldap.Result{
				Code: ldap.ResultOperationsError, Message: fmt.Sprint(r)})}
		}
	}()
	switch req := msg.Op.(type) {
	case *ldap.BindRequest:
		res := s.Handler.Bind(conn, req)
		if res.Code == ldap.ResultSuccess {
			conn.BoundDN = req.Name
		}
		return &ldap.Message{ID: msg.ID, Op: &ldap.BindResponse{Result: res}}
	case *ldap.SearchRequest:
		send := func(e *ldap.SearchResultEntry) error {
			return write(&ldap.Message{ID: msg.ID, Op: e})
		}
		res := s.Handler.Search(conn, req, send)
		return &ldap.Message{ID: msg.ID, Op: &ldap.SearchResultDone{Result: res}}
	case *ldap.AddRequest:
		return &ldap.Message{ID: msg.ID, Op: &ldap.AddResponse{Result: s.Handler.Add(conn, req)}}
	case *ldap.DeleteRequest:
		return &ldap.Message{ID: msg.ID, Op: &ldap.DeleteResponse{Result: s.Handler.Delete(conn, req)}}
	case *ldap.ModifyRequest:
		return &ldap.Message{ID: msg.ID, Op: &ldap.ModifyResponse{Result: s.Handler.Modify(conn, req)}}
	case *ldap.ModifyDNRequest:
		return &ldap.Message{ID: msg.ID, Op: &ldap.ModifyDNResponse{Result: s.Handler.ModifyDN(conn, req)}}
	case *ldap.CompareRequest:
		return &ldap.Message{ID: msg.ID, Op: &ldap.CompareResponse{Result: s.Handler.Compare(conn, req)}}
	case *ldap.ExtendedRequest:
		return &ldap.Message{ID: msg.ID, Op: s.Handler.Extended(conn, req)}
	case *ldap.AbandonRequest:
		return nil // operations are synchronous here; nothing to abandon
	}
	return &ldap.Message{ID: msg.ID, Op: &ldap.ExtendedResponse{
		Result: ldap.Result{Code: ldap.ResultProtocolError, Message: "unsupported operation"}}}
}

// opError builds the response op matching a request op for error reporting.
func opError(req ldap.Op, res ldap.Result) ldap.Op {
	switch req.(type) {
	case *ldap.BindRequest:
		return &ldap.BindResponse{Result: res}
	case *ldap.SearchRequest:
		return &ldap.SearchResultDone{Result: res}
	case *ldap.AddRequest:
		return &ldap.AddResponse{Result: res}
	case *ldap.DeleteRequest:
		return &ldap.DeleteResponse{Result: res}
	case *ldap.ModifyRequest:
		return &ldap.ModifyResponse{Result: res}
	case *ldap.ModifyDNRequest:
		return &ldap.ModifyDNResponse{Result: res}
	case *ldap.CompareRequest:
		return &ldap.CompareResponse{Result: res}
	default:
		return &ldap.ExtendedResponse{Result: res}
	}
}
