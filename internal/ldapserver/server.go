// Package ldapserver provides the TCP front end that speaks the LDAP v3
// protocol for any Handler. Both the MetaComm directory server (a DIT
// handler) and the LTAP trigger gateway (a proxying handler that "pretends
// to be an LDAP server", paper §4.3) are Handlers behind this server.
package ldapserver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"metacomm/internal/ber"
	"metacomm/internal/ldap"
)

// Conn carries per-connection state visible to handlers.
type Conn struct {
	// BoundDN is the DN established by the last successful bind ("" when
	// anonymous).
	BoundDN string
	// RemoteAddr is the peer address, for logging.
	RemoteAddr string
	// Data lets gateway handlers stash per-connection state (e.g. LTAP
	// persistent-connection mode).
	Data map[string]any
}

// Handler responds to LDAP operations. Implementations must be safe for
// concurrent use: the server runs one goroutine per connection.
type Handler interface {
	Bind(c *Conn, req *ldap.BindRequest) ldap.Result
	Search(c *Conn, req *ldap.SearchRequest, send func(*ldap.SearchResultEntry) error) ldap.Result
	Add(c *Conn, req *ldap.AddRequest) ldap.Result
	Delete(c *Conn, req *ldap.DeleteRequest) ldap.Result
	Modify(c *Conn, req *ldap.ModifyRequest) ldap.Result
	ModifyDN(c *Conn, req *ldap.ModifyDNRequest) ldap.Result
	Compare(c *Conn, req *ldap.CompareRequest) ldap.Result
	Extended(c *Conn, req *ldap.ExtendedRequest) *ldap.ExtendedResponse
}

// Server accepts LDAP connections and dispatches operations to a Handler.
type Server struct {
	Handler Handler
	// ErrorLog receives connection-level errors; nil discards them.
	ErrorLog *log.Logger
	// MaxMessageSize bounds a single request message (identifier + length +
	// content); 0 means ber.DefaultMaxMessageSize. A request declaring a
	// larger length is answered with a protocolError unsolicited notice and
	// the connection is closed, before any content is read or allocated.
	MaxMessageSize int
	// AcceptLoop selects the connection-serving strategy: "goroutine" (or
	// "", the default) parks one goroutine plus dedicated buffers on every
	// connection; "epoll" multiplexes all connections onto a readiness
	// reactor with a bounded worker pool, so an idle connection costs no
	// goroutine and no buffer (Linux only — elsewhere the server logs a
	// note and falls back to goroutine mode). Set before Start.
	AcceptLoop string
	// Workers sizes the reactor's resident worker pool in epoll mode; 0
	// means a GOMAXPROCS-derived default. Ignored in goroutine mode.
	Workers int

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
	reactor  *reactor

	wire wireCounters
}

// Accept-loop mode names accepted by Server.AcceptLoop (and the -accept-loop
// flags in metacommd and loadgen).
const (
	AcceptLoopGoroutine = "goroutine"
	AcceptLoopEpoll     = "epoll"
)

// wireCounters aggregates per-connection wire activity across the server.
type wireCounters struct {
	messagesRead     atomic.Uint64
	responsesWritten atomic.Uint64
	flushes          atomic.Uint64
	oversizeRejected atomic.Uint64
}

// WireStats is a point-in-time snapshot of the server's wire-path counters.
// ResponsesWritten counts every response message including streamed search
// entries; Flushes counts explicit buffer flushes (the 4 KB write buffer may
// add implicit ones when a large search stream overflows it), so
// ResponsesWritten/Flushes approximates the pipelining coalescing factor
// (1.0 = one write syscall per response).
type WireStats struct {
	MessagesRead     uint64
	ResponsesWritten uint64
	Flushes          uint64
	OversizeRejected uint64
	// Reactor is the epoll accept-loop snapshot; the zero value (with
	// Enabled=false) in goroutine mode.
	Reactor ReactorStats
}

// ReactorStats is a point-in-time snapshot of the epoll reactor.
type ReactorStats struct {
	Enabled    bool
	Conns      uint64 // connections currently registered with the reactor
	Workers    uint64 // live worker goroutines (resident + overflow)
	Wakeups    uint64 // epoll_wait returns
	Events     uint64 // readiness events dispatched to connections
	Frames     uint64 // complete BER frames peeled off readiness events
	QueueDepth uint64 // ready connections awaiting a worker right now
}

// FramesPerWakeup returns the mean number of complete frames served per
// epoll_wait return — the reactor's batching factor (higher = fewer wakeups
// doing more work each).
func (r ReactorStats) FramesPerWakeup() float64 {
	if r.Wakeups == 0 {
		return 0
	}
	return float64(r.Frames) / float64(r.Wakeups)
}

// ResponsesPerFlush returns the mean number of response messages coalesced
// into one kernel write.
func (w WireStats) ResponsesPerFlush() float64 {
	if w.Flushes == 0 {
		return 0
	}
	return float64(w.ResponsesWritten) / float64(w.Flushes)
}

// WireStats snapshots the server's wire counters.
func (s *Server) WireStats() WireStats {
	ws := WireStats{
		MessagesRead:     s.wire.messagesRead.Load(),
		ResponsesWritten: s.wire.responsesWritten.Load(),
		Flushes:          s.wire.flushes.Load(),
		OversizeRejected: s.wire.oversizeRejected.Load(),
	}
	s.mu.Lock()
	r := s.reactor
	s.mu.Unlock()
	if r != nil {
		ws.Reactor = r.stats()
	}
	return ws
}

// NewServer returns a server for the handler.
func NewServer(h Handler) *Server {
	return &Server{Handler: h, conns: map[net.Conn]bool{}}
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the background.
// It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	var r *reactor
	switch s.AcceptLoop {
	case "", AcceptLoopGoroutine:
	case AcceptLoopEpoll:
		var err error
		if r, err = newReactor(s); err != nil {
			// Portable fallback: serve goroutine-per-conn and say so, since
			// benchmarks comparing the modes must not silently converge.
			s.logf("ldapserver: epoll accept loop unavailable (%v); falling back to goroutine mode", err)
		}
	default:
		return nil, fmt.Errorf("ldapserver: unknown accept loop %q (want %q or %q)",
			s.AcceptLoop, AcceptLoopGoroutine, AcceptLoopEpoll)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		if r != nil {
			r.shutdown()
		}
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		if r != nil {
			r.shutdown()
		}
		return nil, errors.New("ldapserver: server closed")
	}
	s.listener = l
	s.reactor = r
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(l)
	}()
	return l.Addr(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		if s.reactor != nil {
			// Reactor mode: the conn's fd moves into the epoll set; no
			// per-conn goroutine and no entry in the conns map (the reactor
			// owns teardown).
			s.mu.Unlock()
			s.reactor.register(c)
			continue
		}
		s.conns[c] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(c)
		}()
	}
}

// Close stops the listener and closes all live connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	r := s.reactor
	s.mu.Unlock()
	if r != nil {
		r.shutdown()
	}
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.ErrorLog != nil {
		s.ErrorLog.Printf(format, args...)
	}
}

func (s *Server) serveConn(nc net.Conn) {
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()
	conn := &Conn{RemoteAddr: nc.RemoteAddr().String(), Data: map[string]any{}}
	// The reader owns this connection's decode storage: a buffered reader
	// (headers parse without byte-at-a-time conn reads), a reused message
	// buffer, and an element arena — steady-state BER decode allocates
	// nothing. DecodeMessage copies what it keeps, so handlers own their
	// requests. The buffered writer coalesces responses; it is flushed only
	// before a read that would block, so a pipelined burst of requests gets
	// its responses in one kernel write.
	rd := ldap.NewReader(nc)
	rd.SetMaxMessageSize(s.MaxMessageSize)
	bw := bufio.NewWriterSize(nc, 4096)
	defer bw.Flush() // unbind and error exits still deliver pending responses
	// One reusable encode buffer per connection: responses append into it
	// before entering the write buffer. The connection's goroutine is the
	// only writer, so no locking is needed.
	wbuf := make([]byte, 0, 4096)
	write := func(m *ldap.Message) error {
		wbuf = m.AppendTo(wbuf[:0])
		_, err := bw.Write(wbuf)
		if err == nil {
			s.wire.responsesWritten.Add(1)
		}
		return err
	}
	for {
		// Flush only when no complete pipelined request is already buffered:
		// a client that wrote N requests in one burst gets its N responses
		// coalesced, while a request-at-a-time client still sees its
		// response before the server blocks for the next request.
		if !rd.MessageBuffered() && bw.Buffered() > 0 {
			if err := bw.Flush(); err != nil {
				s.logf("ldapserver: %s: write: %v", conn.RemoteAddr, err)
				return
			}
			s.wire.flushes.Add(1)
		}
		msg, err := rd.ReadMessage()
		if err != nil {
			if errors.Is(err, ber.ErrTooLarge) {
				// Refuse the oversized message with LDAP's unsolicited
				// notice (message ID 0), then drop the connection; nothing
				// was allocated or read for the declared length.
				s.wire.oversizeRejected.Add(1)
				_ = write(&ldap.Message{ID: 0, Op: &ldap.ExtendedResponse{
					Name: ldap.NoticeOfDisconnection,
					Result: ldap.Result{Code: ldap.ResultProtocolError,
						Message: err.Error()}}})
				return
			}
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("ldapserver: %s: read: %v", conn.RemoteAddr, err)
			}
			return
		}
		s.wire.messagesRead.Add(1)
		if _, ok := msg.Op.(*ldap.UnbindRequest); ok {
			return
		}
		resp := s.dispatch(conn, write, msg)
		if resp == nil {
			continue // abandon has no response (and nothing to flush)
		}
		if err := write(resp); err != nil {
			s.logf("ldapserver: %s: write: %v", conn.RemoteAddr, err)
			return
		}
	}
}

// dispatch runs one operation and returns the final response message (search
// entries are streamed through write, the connection's buffered encoder).
func (s *Server) dispatch(conn *Conn, write func(*ldap.Message) error, msg *ldap.Message) (out *ldap.Message) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("ldapserver: %s: handler panic: %v", conn.RemoteAddr, r)
			out = &ldap.Message{ID: msg.ID, Op: opError(msg.Op, ldap.Result{
				Code: ldap.ResultOperationsError, Message: fmt.Sprint(r)})}
		}
	}()
	switch req := msg.Op.(type) {
	case *ldap.BindRequest:
		res := s.Handler.Bind(conn, req)
		if res.Code == ldap.ResultSuccess {
			conn.BoundDN = req.Name
		}
		return &ldap.Message{ID: msg.ID, Op: &ldap.BindResponse{Result: res}}
	case *ldap.SearchRequest:
		send := func(e *ldap.SearchResultEntry) error {
			return write(&ldap.Message{ID: msg.ID, Op: e})
		}
		res := s.Handler.Search(conn, req, send)
		return &ldap.Message{ID: msg.ID, Op: &ldap.SearchResultDone{Result: res}}
	case *ldap.AddRequest:
		return &ldap.Message{ID: msg.ID, Op: &ldap.AddResponse{Result: s.Handler.Add(conn, req)}}
	case *ldap.DeleteRequest:
		return &ldap.Message{ID: msg.ID, Op: &ldap.DeleteResponse{Result: s.Handler.Delete(conn, req)}}
	case *ldap.ModifyRequest:
		return &ldap.Message{ID: msg.ID, Op: &ldap.ModifyResponse{Result: s.Handler.Modify(conn, req)}}
	case *ldap.ModifyDNRequest:
		return &ldap.Message{ID: msg.ID, Op: &ldap.ModifyDNResponse{Result: s.Handler.ModifyDN(conn, req)}}
	case *ldap.CompareRequest:
		return &ldap.Message{ID: msg.ID, Op: &ldap.CompareResponse{Result: s.Handler.Compare(conn, req)}}
	case *ldap.ExtendedRequest:
		return &ldap.Message{ID: msg.ID, Op: s.Handler.Extended(conn, req)}
	case *ldap.AbandonRequest:
		return nil // operations are synchronous here; nothing to abandon
	}
	return &ldap.Message{ID: msg.ID, Op: &ldap.ExtendedResponse{
		Result: ldap.Result{Code: ldap.ResultProtocolError, Message: "unsupported operation"}}}
}

// opError builds the response op matching a request op for error reporting.
func opError(req ldap.Op, res ldap.Result) ldap.Op {
	switch req.(type) {
	case *ldap.BindRequest:
		return &ldap.BindResponse{Result: res}
	case *ldap.SearchRequest:
		return &ldap.SearchResultDone{Result: res}
	case *ldap.AddRequest:
		return &ldap.AddResponse{Result: res}
	case *ldap.DeleteRequest:
		return &ldap.DeleteResponse{Result: res}
	case *ldap.ModifyRequest:
		return &ldap.ModifyResponse{Result: res}
	case *ldap.ModifyDNRequest:
		return &ldap.ModifyDNResponse{Result: res}
	case *ldap.CompareRequest:
		return &ldap.CompareResponse{Result: res}
	default:
		return &ldap.ExtendedResponse{Result: res}
	}
}
