//go:build !linux

package ldapserver

import (
	"errors"
	"net"
)

// reactorSupported reports build-level availability of the epoll reactor.
const reactorSupported = false

// reactor is a stub off Linux: newReactor always fails, so Start logs a
// note and the server keeps the portable goroutine-per-conn path.
type reactor struct{}

func newReactor(*Server) (*reactor, error) {
	return nil, errors.New("epoll accept loop requires linux")
}

func (*reactor) register(net.Conn)   {}
func (*reactor) shutdown()           {}
func (*reactor) stats() ReactorStats { return ReactorStats{} }
