//go:build linux

// The epoll reactor: readiness-driven serving for 10k+ mostly-idle
// connections. Goroutine mode (serveConn) parks a goroutine stack, a bufio
// reader, a 4 KB write buffer, an encode buffer and a decode arena on every
// connection; at 10k connections that is ~10k stacks and tens of MB doing
// nothing. Here a single event-loop goroutine owns an epoll set of
// non-blocking fds and peels complete BER frames into pooled buffers; ready
// connections are handed to a bounded worker pool that decodes with a
// per-worker arena and dispatches through the same s.dispatch the goroutine
// path uses. An idle connection costs one ~200-byte econn and one fd —
// buffers return to the pools whenever a connection has no pending bytes.
//
// Invariants the implementation maintains (DESIGN.md §16):
//
//   - Per-connection order: a connection is in the worker queue at most once
//     (the scheduled flag, under the conn lock); the owning worker serves its
//     frames strictly in arrival order and no other worker touches it until
//     it deschedules.
//   - Flush coalescing, byte-for-byte with the goroutine path: responses
//     append to a per-conn output buffer and are written to the kernel once
//     per scheduling turn — a pipelined burst of N requests is answered in
//     one write; oversize requests get the unsolicited notice-of-
//     disconnection and a close, before any content is buffered.
//   - Edge-triggered registration happens once per conn (IN|OUT|RDHUP|ET):
//     ET EPOLLOUT fires only on not-writable→writable transitions, so there
//     is no EPOLL_CTL_MOD rearming and no rearm races. The reads that
//     follow an event always drain to EAGAIN.
//   - Locks nest conn→registry only, and a conn's fd is closed exactly once
//     (finalizeLocked, guarded by c.closed), which also drops it from the
//     epoll set.
package ldapserver

import (
	"errors"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"

	"metacomm/internal/ber"
	"metacomm/internal/ldap"
)

// reactorSupported reports build-level availability of the epoll reactor.
const reactorSupported = true

const (
	// epollET requests edge-triggered delivery. syscall.EPOLLET is declared
	// as a negative untyped int on linux; keep a uint32 mask.
	epollET = uint32(1) << 31

	// readChunk is the minimum spare capacity ensured before each
	// non-blocking read.
	readChunk = 2048

	// maxPooledBuf caps the capacity of buffers returned to the pool so a
	// burst of large messages cannot pin memory in idle pools.
	maxPooledBuf = 64 << 10

	// flushThreshold flushes a connection's pending output mid-turn once it
	// grows past this size, bounding buffering for large search streams
	// (the goroutine path's 4 KB bufio writer overflows implicitly the same
	// way; neither counts toward the coalescing flush counter).
	flushThreshold = 32 << 10

	// framesPerTurn bounds how many frames one scheduling turn serves from
	// a single connection before requeueing it, so a pipelining firehose
	// cannot starve other ready connections.
	framesPerTurn = 64

	// reactorMaxWorkers caps the pool including overflow workers. Overflow
	// exists because handlers may block (the LTAP gateway proxies to a
	// backend; quiesce gates hold update handlers): whenever work is queued
	// and every worker is occupied, a transient worker is spawned rather
	// than risking the queued op being the one that would unblock the rest.
	// Worst case this degenerates to a goroutine per *active* op — still
	// zero goroutines for idle connections.
	reactorMaxWorkers = 4096
)

func defaultReactorWorkers() int {
	if n := 4 * runtime.GOMAXPROCS(0); n > 8 {
		return n
	}
	return 8
}

// bufPool recycles connection I/O buffers. Idle connections hold none.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// netBuf is a byte queue: the producer appends at the tail, the consumer
// advances off. The backing array returns to the pool when the queue drains.
type netBuf struct {
	buf []byte
	off int
}

func (b *netBuf) size() int       { return len(b.buf) - b.off }
func (b *netBuf) pending() []byte { return b.buf[b.off:] }

func (b *netBuf) consume(n int) {
	b.off += n
	if b.off == len(b.buf) {
		b.buf = b.buf[:0]
		b.off = 0
	}
}

// compact reclaims the consumed prefix. Callers must hold no aliases into
// the buffer: compact moves bytes in place.
func (b *netBuf) compact() {
	if b.off == 0 {
		return
	}
	n := copy(b.buf, b.buf[b.off:])
	b.buf = b.buf[:n]
	b.off = 0
}

// release returns a drained buffer to the pool. No-op while bytes pend.
func (b *netBuf) release() {
	if b.size() != 0 {
		return
	}
	if b.buf != nil && cap(b.buf) <= maxPooledBuf {
		s := b.buf[:0]
		bufPool.Put(&s)
	}
	b.buf, b.off = nil, 0
}

// ensureSpace guarantees n spare bytes of append capacity. It never moves
// pending bytes in place (growth reallocates), so frame slices handed to a
// worker stay valid while the reactor keeps appending.
func (b *netBuf) ensureSpace(n int) {
	if b.buf == nil {
		b.buf = (*bufPool.Get().(*[]byte))[:0]
		b.off = 0
	}
	if cap(b.buf)-len(b.buf) >= n {
		return
	}
	newCap := 2 * cap(b.buf)
	if newCap < len(b.buf)+n {
		newCap = len(b.buf) + n
	}
	nb := make([]byte, len(b.buf), newCap)
	copy(nb, b.buf)
	b.buf = nb // old array may still be aliased by an in-flight frame; GC owns it
}

// econn is one connection registered with the reactor.
type econn struct {
	fd    int
	file  *os.File // keeps the (sole) fd reference; closing it leaves the epoll set
	conn  *Conn
	write func(*ldap.Message) error // appends a response to out; set at register

	mu              sync.Mutex
	in              netBuf // unprocessed inbound bytes (reactor appends, worker consumes)
	out             netBuf // un-flushed outbound bytes
	scheduled       bool   // queued for / being served by a worker
	throttled       bool   // input reads paused until the worker catches up
	eof             bool   // peer done writing, or the read path failed
	frameErr        error  // fatal framing/decode error (oversize ⇒ notice first)
	unbound         bool   // client sent UnbindRequest: drop input, flush, close
	closeAfterFlush bool   // close as soon as out drains (EPOLLOUT finishes it)
	closed          bool   // fd closed, conn deregistered
}

// workQueue is the ready-connection FIFO feeding the worker pool.
type workQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*econn
	head   int
	idle   int // workers parked in pop
	closed bool
}

func (q *workQueue) pop(block bool) (*econn, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.head < len(q.items) {
			c := q.items[q.head]
			q.items[q.head] = nil
			q.head++
			if q.head == len(q.items) {
				q.items = q.items[:0]
				q.head = 0
			}
			return c, true
		}
		if q.closed || !block {
			return nil, false
		}
		q.idle++
		q.cond.Wait()
		q.idle--
	}
}

func (q *workQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

type reactor struct {
	srv          *Server
	epfd         int
	wakeR, wakeW int // self-pipe: wakes the event loop for shutdown
	maxMsg       int
	maxIn        int // throttle bound on unprocessed inbound bytes per conn

	mu     sync.Mutex // registry lock; nests inside econn.mu
	conns  map[int32]*econn
	closed bool

	q  workQueue
	wg sync.WaitGroup

	registered atomic.Int64
	workers    atomic.Int64
	wakeups    atomic.Uint64
	events     atomic.Uint64
	frames     atomic.Uint64
}

func newReactor(s *Server) (*reactor, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	r := &reactor{srv: s, epfd: epfd, wakeR: p[0], wakeW: p[1], conns: map[int32]*econn{}}
	r.maxMsg = s.MaxMessageSize
	if r.maxMsg <= 0 {
		r.maxMsg = ber.DefaultMaxMessageSize
	}
	// One max-size frame must always be able to complete; beyond that the
	// reactor stops reading a conn until its worker catches up, so a
	// flooding client cannot buffer more than the goroutine path would.
	r.maxIn = r.maxMsg + 16
	r.q.cond = sync.NewCond(&r.q.mu)
	// The wake pipe is the one level-triggered registration: its byte must
	// stay visible until the loop drains it.
	ev := syscall.EpollEvent{Events: uint32(syscall.EPOLLIN), Fd: int32(p[0])}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p[0], &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(p[0])
		syscall.Close(p[1])
		return nil, err
	}
	base := s.Workers
	if base <= 0 {
		base = defaultReactorWorkers()
	}
	if base > reactorMaxWorkers {
		base = reactorMaxWorkers
	}
	r.wg.Add(1)
	go r.loop()
	for i := 0; i < base; i++ {
		r.workers.Add(1)
		r.wg.Add(1)
		go r.workerLoop(false)
	}
	return r, nil
}

func (r *reactor) stats() ReactorStats {
	r.q.mu.Lock()
	depth := len(r.q.items) - r.q.head
	r.q.mu.Unlock()
	return ReactorStats{
		Enabled:    true,
		Conns:      uint64(max64(r.registered.Load(), 0)),
		Workers:    uint64(max64(r.workers.Load(), 0)),
		Wakeups:    r.wakeups.Load(),
		Events:     r.events.Load(),
		Frames:     r.frames.Load(),
		QueueDepth: uint64(depth),
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// register moves an accepted connection onto the reactor: the fd is dup'd
// out of the net.Conn (which is then closed), set non-blocking, and added to
// the epoll set edge-triggered for both directions, once — no CTL_MOD ever.
func (r *reactor) register(nc net.Conn) {
	ra := nc.RemoteAddr().String()
	tc, ok := nc.(*net.TCPConn)
	if !ok {
		// Non-TCP listener (not used today): keep the portable path.
		r.srv.wg.Add(1)
		go func() {
			defer r.srv.wg.Done()
			r.srv.serveConn(nc)
		}()
		return
	}
	f, err := tc.File()
	nc.Close()
	if err != nil {
		r.srv.logf("ldapserver: %s: reactor register: %v", ra, err)
		return
	}
	fd := int(f.Fd())
	if err := syscall.SetNonblock(fd, true); err != nil {
		f.Close()
		r.srv.logf("ldapserver: %s: reactor register: %v", ra, err)
		return
	}
	c := &econn{fd: fd, file: f, conn: &Conn{RemoteAddr: ra, Data: map[string]any{}}}
	c.write = r.responseWriter(c)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		f.Close()
		return
	}
	r.conns[int32(fd)] = c
	r.mu.Unlock()
	r.registered.Add(1)
	ev := syscall.EpollEvent{
		Events: uint32(syscall.EPOLLIN|syscall.EPOLLOUT|syscall.EPOLLRDHUP) | epollET,
		Fd:     int32(fd),
	}
	if err := syscall.EpollCtl(r.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		r.srv.logf("ldapserver: %s: reactor register: %v", ra, err)
		c.mu.Lock()
		r.finalizeLocked(c)
		c.mu.Unlock()
	}
}

// loop is the event loop: one goroutine regardless of connection count.
func (r *reactor) loop() {
	defer r.wg.Done()
	events := make([]syscall.EpollEvent, 256)
	for {
		n, err := syscall.EpollWait(r.epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return
		}
		r.wakeups.Add(1)
		for i := 0; i < n; i++ {
			fd := events[i].Fd
			if int(fd) == r.wakeR {
				var scratch [64]byte
				for {
					if n, _ := syscall.Read(r.wakeR, scratch[:]); n < len(scratch) {
						break
					}
				}
				if r.isClosed() {
					return
				}
				continue
			}
			r.mu.Lock()
			c := r.conns[fd]
			r.mu.Unlock()
			if c == nil {
				continue // closed while the event was in flight (fd may be reused)
			}
			r.events.Add(1)
			r.handleEvent(c, events[i].Events)
		}
	}
}

func (r *reactor) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

func (r *reactor) handleEvent(c *econn, ev uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if ev&uint32(syscall.EPOLLOUT) != 0 && c.out.size() > 0 {
		// Writability returned: continue the flush a worker started. Not a
		// new coalescing flush, so it is not counted as one.
		r.flushLocked(c, false)
		if c.closed {
			return
		}
	}
	if ev&uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP|syscall.EPOLLHUP|syscall.EPOLLERR) != 0 {
		if !c.throttled && !c.closeAfterFlush {
			r.readLocked(c)
		}
		r.scheduleLocked(c)
	}
}

// readLocked drains the socket (edge-triggered: until EAGAIN or throttle),
// appending to c.in. Appends may reallocate but never move pending bytes in
// place, so a frame slice held by the owning worker stays valid. Called with
// c.mu held, by the reactor and by workers resuming a throttled conn.
func (r *reactor) readLocked(c *econn) {
	for !c.eof && !c.closed {
		if c.in.size() >= r.maxIn {
			c.throttled = true
			return
		}
		c.in.ensureSpace(readChunk)
		spare := c.in.buf[len(c.in.buf):cap(c.in.buf)]
		n, err := syscall.Read(c.fd, spare)
		if n > 0 {
			c.in.buf = c.in.buf[:len(c.in.buf)+n]
			continue
		}
		switch {
		case n == 0 && err == nil:
			c.eof = true
		case err == syscall.EAGAIN:
			return
		case err == syscall.EINTR:
			continue
		default:
			r.srv.logf("ldapserver: %s: read: %v", c.conn.RemoteAddr, err)
			c.eof = true
		}
	}
}

// scheduleLocked hands the connection to the worker pool when it has
// servable work (a complete frame, or a framing error to refuse). A conn at
// EOF with nothing servable closes right here, reactor-side — idle
// disconnects never occupy a worker. Called with c.mu held.
func (r *reactor) scheduleLocked(c *econn) {
	if c.scheduled || c.closed || c.closeAfterFlush {
		return
	}
	servable := c.frameErr != nil
	if !servable {
		pend := c.in.pending()
		size, ok, err := ber.FrameSize(pend, r.maxMsg)
		if err != nil {
			c.frameErr = err
			servable = true
		} else {
			servable = ok && len(pend) >= size
		}
	}
	if servable {
		c.scheduled = true
		r.enqueue(c)
		return
	}
	if c.eof {
		if c.in.size() > 0 {
			// Bytes with no complete frame behind them: same diagnostic the
			// goroutine path's io.ReadFull surfaces.
			r.srv.logf("ldapserver: %s: read: %v", c.conn.RemoteAddr, io.ErrUnexpectedEOF)
		}
		r.flushLocked(c, false)
		if c.closed {
			return
		}
		if c.out.size() > 0 {
			c.closeAfterFlush = true
			return
		}
		r.finalizeLocked(c)
	}
}

// enqueue pushes a scheduled connection to the worker queue, growing the
// pool with a transient worker when nobody is idle to take it (see
// reactorMaxWorkers for why blocking handlers make this necessary).
func (r *reactor) enqueue(c *econn) {
	q := &r.q
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, c)
	spawn := q.idle == 0 && r.workers.Load() < reactorMaxWorkers
	q.cond.Signal()
	q.mu.Unlock()
	if spawn {
		r.workers.Add(1)
		r.wg.Add(1)
		go r.workerLoop(true)
	}
}

func (r *reactor) workerLoop(transient bool) {
	defer r.wg.Done()
	defer r.workers.Add(-1)
	var dec ber.Decoder
	for {
		c, ok := r.q.pop(!transient)
		if !ok {
			return
		}
		r.serveTurn(c, &dec)
		dec.Trim()
	}
}

// serveTurn serves one scheduling turn of a connection: every complete frame
// currently buffered (up to framesPerTurn), in arrival order, through the
// same s.dispatch as the goroutine path, with all responses coalesced into
// one kernel write at deschedule.
func (r *reactor) serveTurn(c *econn, dec *ber.Decoder) {
	served := 0
	for {
		c.mu.Lock()
		if c.closed {
			c.scheduled = false
			c.mu.Unlock()
			return
		}
		var frame []byte
		if c.frameErr == nil && !c.unbound {
			pend := c.in.pending()
			if size, ok, err := ber.FrameSize(pend, r.maxMsg); err != nil {
				c.frameErr = err
			} else if ok && len(pend) >= size {
				if served >= framesPerTurn {
					// Requeue behind other ready conns; stay scheduled so
					// the reactor cannot double-enqueue in between.
					r.flushLocked(c, true)
					c.mu.Unlock()
					r.enqueue(c)
					return
				}
				frame = pend[:size:size]
			}
		}
		if frame == nil {
			r.finishTurn(c) // releases c.mu
			return
		}
		c.mu.Unlock()

		served++
		r.frames.Add(1)
		// Decode outside the conn lock: the frame slice is stable (the
		// reactor only appends) and this worker is the conn's only consumer.
		// DecodeMessage copies everything it keeps — the ber tree and frame
		// bytes are dead after this line, so consuming the input (and even
		// pooling its backing array) is safe mid-dispatch.
		e, _, derr := dec.Decode(frame)
		var msg *ldap.Message
		if derr == nil {
			msg, derr = ldap.DecodeMessage(e)
		}
		if derr != nil {
			c.mu.Lock()
			c.in.consume(len(frame))
			c.frameErr = derr
			c.mu.Unlock()
			continue
		}
		r.srv.wire.messagesRead.Add(1)
		if _, ok := msg.Op.(*ldap.UnbindRequest); ok {
			c.mu.Lock()
			c.in.consume(len(frame))
			c.unbound = true
			c.mu.Unlock()
			continue
		}
		resp := r.srv.dispatch(c.conn, c.write, msg)
		if resp != nil {
			_ = c.write(resp) // write errors surface as c.closed next iteration
		}
		c.mu.Lock()
		c.in.consume(len(frame))
		c.mu.Unlock()
	}
}

// finishTurn ends a scheduling turn: flush coalesced responses, surface
// terminal conditions (unbind, EOF, framing errors — oversize answers with
// the unsolicited notice first), return drained buffers to the pools, and
// deschedule. Runs with c.mu held and releases it.
func (r *reactor) finishTurn(c *econn) {
	dead := c.unbound || c.eof
	if c.frameErr != nil {
		dead = true
		if errors.Is(c.frameErr, ber.ErrTooLarge) {
			r.srv.wire.oversizeRejected.Add(1)
			m := &ldap.Message{ID: 0, Op: &ldap.ExtendedResponse{
				Name: ldap.NoticeOfDisconnection,
				Result: ldap.Result{Code: ldap.ResultProtocolError,
					Message: c.frameErr.Error()}}}
			if c.out.buf == nil {
				c.out = netBuf{buf: (*bufPool.Get().(*[]byte))[:0]}
			}
			c.out.buf = m.AppendTo(c.out.buf)
			r.srv.wire.responsesWritten.Add(1)
		} else {
			r.srv.logf("ldapserver: %s: read: %v", c.conn.RemoteAddr, c.frameErr)
		}
	} else if c.eof && !c.unbound && c.in.size() > 0 {
		r.srv.logf("ldapserver: %s: read: %v", c.conn.RemoteAddr, io.ErrUnexpectedEOF)
	}
	r.flushLocked(c, true)
	if dead || c.closed {
		c.scheduled = false
		if !c.closed && c.out.size() > 0 {
			c.closeAfterFlush = true // EPOLLOUT completes the close
		} else {
			r.finalizeLocked(c)
		}
		c.mu.Unlock()
		return
	}
	// Going idle between frames: hand buffers back so a parked connection
	// holds no buffer memory.
	if c.in.size() == 0 {
		c.in.release()
	} else if c.in.off >= maxPooledBuf {
		c.in.compact() // no frame aliases outstanding here
	}
	c.out.release()
	resume := c.throttled && c.in.size() < r.maxIn/2
	if resume {
		c.throttled = false
	}
	c.scheduled = false
	if resume {
		// Catch up on bytes that arrived while throttled; reschedule if a
		// frame completed (possibly onto another worker — fine, we are
		// descheduled).
		r.readLocked(c)
		r.scheduleLocked(c)
	}
	c.mu.Unlock()
}

// responseWriter builds the conn's response append function — the `write`
// the shared dispatch streams search entries through.
func (r *reactor) responseWriter(c *econn) func(*ldap.Message) error {
	return func(m *ldap.Message) error {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.closed {
			return net.ErrClosed
		}
		if c.out.buf == nil {
			c.out = netBuf{buf: (*bufPool.Get().(*[]byte))[:0]}
		}
		c.out.buf = m.AppendTo(c.out.buf)
		r.srv.wire.responsesWritten.Add(1)
		if c.out.size() >= flushThreshold {
			r.flushLocked(c, false)
			if c.closed {
				return net.ErrClosed
			}
		}
		return nil
	}
}

// flushLocked writes pending output until it drains or the kernel pushes
// back (EAGAIN — the standing ET EPOLLOUT registration fires when
// writability returns and handleEvent continues here). Called with c.mu
// held. count marks a coalescing flush (one per scheduling turn);
// continuations and overflow flushes pass false, mirroring the goroutine
// path where only the flush-before-blocking-read is counted.
func (r *reactor) flushLocked(c *econn, count bool) {
	if c.closed || c.out.size() == 0 {
		return
	}
	if count {
		r.srv.wire.flushes.Add(1)
	}
	for c.out.size() > 0 {
		n, err := syscall.Write(c.fd, c.out.pending())
		if n > 0 {
			c.out.consume(n)
			continue
		}
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN || err == nil {
			return
		}
		r.srv.logf("ldapserver: %s: write: %v", c.conn.RemoteAddr, err)
		c.out.buf, c.out.off = c.out.buf[:0], 0
		r.finalizeLocked(c)
		return
	}
	c.out.release()
	if c.closeAfterFlush {
		r.finalizeLocked(c)
	}
}

// finalizeLocked tears the connection down exactly once: deregister, drop
// the buffers, and close the fd (which also removes it from the epoll set —
// this file holds the only reference). The registry delete MUST precede the
// close: the moment the fd returns to the kernel it can be reused by a new
// accept, and register would insert the new conn under the same key — a
// delete-after-close would then remove the new conn and orphan its events.
// Called with c.mu held, from workers and the reactor alike; the registry
// lock nests inside the conn lock.
func (r *reactor) finalizeLocked(c *econn) {
	if c.closed {
		return
	}
	c.closed = true
	r.mu.Lock()
	delete(r.conns, int32(c.fd))
	r.mu.Unlock()
	c.in.buf, c.in.off = c.in.buf[:0], 0
	c.in.release()
	c.out.buf, c.out.off = c.out.buf[:0], 0
	c.out.release()
	c.file.Close()
	r.registered.Add(-1)
}

// shutdown closes every registered connection, stops the event loop and the
// worker pool, and waits for them. Idempotent.
func (r *reactor) shutdown() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	conns := make([]*econn, 0, len(r.conns))
	for _, c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	syscall.Write(r.wakeW, []byte{1})
	for _, c := range conns {
		c.mu.Lock()
		r.finalizeLocked(c)
		c.mu.Unlock()
	}
	r.q.close()
	r.wg.Wait()
	syscall.Close(r.epfd)
	syscall.Close(r.wakeR)
	syscall.Close(r.wakeW)
}
