package device

import "metacomm/internal/lexpress"

// Pool fans a device's update traffic across several administration
// sessions. A single converter serializes on its one command connection —
// invisible against the in-memory simulators, but a real switch takes
// milliseconds per administration command, and then one connection caps the
// whole meta-directory at one device update at a time no matter how many UM
// shards are draining. The pool keeps the device API unchanged: each call
// borrows a free session for one round trip.
//
// All members log in under the same session name, so the devices' echo
// suppression (a filter ignoring the notifications of its own updates)
// keeps working. Only the first member runs a monitor connection; the
// others are command-only, so each direct device update is still observed
// exactly once.
type Pool struct {
	primary Converter
	free    chan Converter
	all     []Converter
}

var _ Converter = (*Pool)(nil)

// NewPool combines converters into one. convs[0] is the primary: it names
// the pool and supplies the notification stream. At least one converter is
// required.
func NewPool(convs ...Converter) *Pool {
	p := &Pool{
		primary: convs[0],
		free:    make(chan Converter, len(convs)),
		all:     convs,
	}
	for _, c := range convs {
		p.free <- c
	}
	return p
}

// Name implements Converter.
func (p *Pool) Name() string { return p.primary.Name() }

// Notifications implements Converter: only the primary's monitor stream.
func (p *Pool) Notifications() <-chan Notification { return p.primary.Notifications() }

// Close shuts every member down.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.all {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Get implements Converter on a borrowed session.
func (p *Pool) Get(key string) (lexpress.Record, error) {
	c := <-p.free
	defer func() { p.free <- c }()
	return c.Get(key)
}

// Add implements Converter on a borrowed session.
func (p *Pool) Add(rec lexpress.Record) (lexpress.Record, error) {
	c := <-p.free
	defer func() { p.free <- c }()
	return c.Add(rec)
}

// Modify implements Converter on a borrowed session.
func (p *Pool) Modify(key string, rec lexpress.Record) (lexpress.Record, error) {
	c := <-p.free
	defer func() { p.free <- c }()
	return c.Modify(key, rec)
}

// Delete implements Converter on a borrowed session.
func (p *Pool) Delete(key string) error {
	c := <-p.free
	defer func() { p.free <- c }()
	return c.Delete(key)
}

// Dump implements Converter on a borrowed session.
func (p *Pool) Dump() ([]lexpress.Record, error) {
	c := <-p.free
	defer func() { p.free <- c }()
	return c.Dump()
}
