package msgplat

import (
	"errors"
	"strings"
	"testing"
	"time"

	"metacomm/internal/device"
	"metacomm/internal/lexpress"
)

func startMP(t testing.TB) (*MP, string) {
	t.Helper()
	m := New()
	addr, err := m.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, addr.String()
}

func dialMP(t testing.TB, addr, session string) *Converter {
	t.Helper()
	c, err := Dial(addr, session)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mailbox(num, name string) lexpress.Record {
	r := lexpress.NewRecord()
	r.Set("Mailbox", num)
	r.Set("Name", name)
	return r
}

func TestAddGeneratesMailboxID(t *testing.T) {
	_, addr := startMP(t)
	c := dialMP(t, addr, "metacomm")
	got, err := c.Add(mailbox("9000", "John Doe"))
	if err != nil {
		t.Fatal(err)
	}
	id := got.First(GeneratedField)
	if !strings.HasPrefix(id, "MBX") {
		t.Fatalf("generated id = %q", id)
	}
	// Unique per add.
	got2, err := c.Add(mailbox("9001", "Pat Smith"))
	if err != nil {
		t.Fatal(err)
	}
	if got2.First(GeneratedField) == id {
		t.Error("ids not unique")
	}
	// Persisted and readable.
	stored, err := c.Get("9000")
	if err != nil {
		t.Fatal(err)
	}
	if stored.First(GeneratedField) != id {
		t.Errorf("stored id = %q, want %q", stored.First(GeneratedField), id)
	}
}

func TestClientCannotChooseGeneratedID(t *testing.T) {
	_, addr := startMP(t)
	c := dialMP(t, addr, "metacomm")
	r := mailbox("9000", "X")
	r.Set(GeneratedField, "MBX999999")
	got, err := c.Add(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.First(GeneratedField) == "MBX999999" {
		t.Error("client-chosen id accepted")
	}
}

func TestCRUDAndClear(t *testing.T) {
	_, addr := startMP(t)
	c := dialMP(t, addr, "metacomm")
	r := mailbox("9000", "John Doe")
	r.Set("COS", "1")
	if _, err := c.Add(r); err != nil {
		t.Fatal(err)
	}
	r.Set("Name", "J Doe")
	r.Set("COS") // clear
	got, err := c.Modify("9000", r)
	if err != nil {
		t.Fatal(err)
	}
	if got.First("Name") != "J Doe" {
		t.Errorf("name = %q", got.First("Name"))
	}
	if got.Has("COS") {
		t.Error("cleared field persisted")
	}
	// Generated id survives modify.
	if !strings.HasPrefix(got.First(GeneratedField), "MBX") {
		t.Error("modify lost generated id")
	}
	if err := c.Delete("9000"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("9000"); !errors.Is(err, device.ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestErrorsOverWire(t *testing.T) {
	m, addr := startMP(t)
	c := dialMP(t, addr, "metacomm")
	if _, err := c.Add(mailbox("1", "A")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(mailbox("1", "A")); !errors.Is(err, device.ErrExists) {
		t.Errorf("dup err = %v", err)
	}
	if err := c.Delete("404"); !errors.Is(err, device.ErrNotFound) {
		t.Errorf("del err = %v", err)
	}
	m.Store.SetDown(true)
	if _, err := c.Get("1"); !errors.Is(err, device.ErrDown) {
		t.Errorf("down err = %v", err)
	}
}

func TestDumpQuotedValues(t *testing.T) {
	_, addr := startMP(t)
	c := dialMP(t, addr, "metacomm")
	r := mailbox("9000", "John Q Doe") // spaces force quoting
	r.Set("Host", "vm1.example.com")
	if _, err := c.Add(r); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("dump = %d", len(recs))
	}
	if recs[0].First("Name") != "John Q Doe" {
		t.Errorf("name = %q", recs[0].First("Name"))
	}
}

func TestDDUNotificationAndEchoSuppression(t *testing.T) {
	_, addr := startMP(t)
	c := dialMP(t, addr, "metacomm")

	// Own update: suppressed.
	if _, err := c.Add(mailbox("1", "Self")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-c.Notifications():
		t.Errorf("echoed own update: %+v", n)
	case <-time.After(100 * time.Millisecond):
	}

	// Foreign DDU: delivered with old/new images.
	admin := dialMP(t, addr, "voicemail-console")
	if _, err := admin.Modify("1", mailbox("1", "Changed")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-c.Notifications():
		if n.Op != lexpress.OpModify || n.Key != "1" || n.Session != "voicemail-console" {
			t.Errorf("notification = %+v", n)
		}
		if n.New.First("name") != "Changed" {
			t.Errorf("new = %v", n.New)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no notification")
	}
}
