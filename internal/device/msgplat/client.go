package msgplat

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"metacomm/internal/device"
	"metacomm/internal/lexpress"
)

// Converter is the messaging-platform filter's protocol converter. Like the
// PBX converter it uses a command connection plus a subscription connection,
// but it speaks the platform's numeric-response protocol — the mapper above
// it never sees the difference, which is the point of the protocol/mapper
// split (paper §4.1).
type Converter struct {
	session string

	mu  sync.Mutex
	cmd net.Conn
	r   *bufio.Reader
	w   *bufio.Writer

	sub    net.Conn
	notifs chan device.Notification
	closed bool
}

var _ device.Converter = (*Converter)(nil)

// Dial connects a converter to a messaging platform.
func Dial(addr, session string) (*Converter, error) {
	c, err := dialCommand(addr, session)
	if err != nil {
		return nil, err
	}
	sub, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.sub = sub
	sw := bufio.NewWriter(sub)
	sr := bufio.NewReader(sub)
	if _, err := sr.ReadString('\n'); err != nil { // greeting
		c.Close()
		return nil, err
	}
	fmt.Fprintf(sw, "HELO %s-sub\r\nSUBSCRIBE\r\n", device.QuoteField(session))
	if err := sw.Flush(); err != nil {
		c.Close()
		return nil, err
	}
	for i := 0; i < 2; i++ { // HELO + SUBSCRIBE replies
		line, err := sr.ReadString('\n')
		if err != nil || !strings.HasPrefix(line, "250") {
			c.Close()
			return nil, fmt.Errorf("msgplat: subscribe failed: %q %v", line, err)
		}
	}
	go c.subscribeLoop(sr)
	return c, nil
}

// DialCommandOnly connects a converter without a subscription connection —
// for pooled administration sessions (device.Pool), where only the pool's
// primary watches for direct device updates. Its Notifications channel
// never delivers.
func DialCommandOnly(addr, session string) (*Converter, error) {
	return dialCommand(addr, session)
}

// dialCommand establishes the command connection and introduces itself.
func dialCommand(addr, session string) (*Converter, error) {
	cmd, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Converter{
		session: session,
		cmd:     cmd,
		r:       bufio.NewReader(cmd),
		w:       bufio.NewWriter(cmd),
		notifs:  make(chan device.Notification, 256),
	}
	if _, err := c.readReply(); err != nil { // 220 greeting
		cmd.Close()
		return nil, err
	}
	if _, err := c.command(fmt.Sprintf("HELO %s", device.QuoteField(session))); err != nil {
		cmd.Close()
		return nil, err
	}
	return c, nil
}

// Name implements device.Converter.
func (c *Converter) Name() string { return DeviceName }

// Close shuts both connections down.
func (c *Converter) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	fmt.Fprintf(c.w, "QUIT\r\n")
	c.w.Flush()
	c.cmd.Close()
	if c.sub != nil {
		c.sub.Close()
	}
	return nil
}

// Notifications implements device.Converter.
func (c *Converter) Notifications() <-chan device.Notification { return c.notifs }

// readReply reads one complete (possibly multi-line 250-) reply.
func (c *Converter) readReply() ([]string, error) {
	var lines []string
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		lines = append(lines, line)
		if len(line) >= 4 && line[3] == '-' {
			continue
		}
		return lines, nil
	}
}

func (c *Converter) command(line string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("msgplat: converter closed")
	}
	fmt.Fprintf(c.w, "%s\r\n", line)
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	lines, err := c.readReply()
	if err != nil {
		return nil, err
	}
	final := lines[len(lines)-1]
	if strings.HasPrefix(final, "250") || strings.HasPrefix(final, "221") {
		return lines, nil
	}
	return nil, statusError(final)
}

func statusError(line string) error {
	code, msg := line, ""
	if i := strings.IndexByte(line, ' '); i > 0 {
		code, msg = line[:i], line[i+1:]
	}
	switch code {
	case "550":
		return fmt.Errorf("%w: %s", device.ErrNotFound, msg)
	case "551":
		return fmt.Errorf("%w: %s", device.ErrExists, msg)
	case "553":
		return fmt.Errorf("%w: %s", device.ErrDown, msg)
	}
	return fmt.Errorf("msgplat: %s", line)
}

// Add implements device.Converter; the reply carries the generated id,
// which is folded into the returned record (paper §5.5).
func (c *Converter) Add(rec lexpress.Record) (lexpress.Record, error) {
	key := rec.First(KeyField)
	if key == "" {
		return nil, fmt.Errorf("msgplat: record has no %s", KeyField)
	}
	lines, err := c.command(fmt.Sprintf("ADD %s %s", device.QuoteField(key), encodeUserAssignments(rec)))
	if err != nil {
		return nil, err
	}
	out := rec.Clone()
	final := lines[len(lines)-1]
	if i := strings.Index(final, "ID="); i >= 0 {
		out.Set(GeneratedField, strings.TrimSpace(final[i+3:]))
	}
	return out, nil
}

// Modify implements device.Converter by writing every user-settable field.
func (c *Converter) Modify(key string, rec lexpress.Record) (lexpress.Record, error) {
	if _, err := c.command(fmt.Sprintf("MOD %s %s", device.QuoteField(key), encodeAllUserFields(rec))); err != nil {
		return nil, err
	}
	return c.Get(key)
}

// Delete implements device.Converter.
func (c *Converter) Delete(key string) error {
	_, err := c.command("DEL " + device.QuoteField(key))
	return err
}

// Get implements device.Converter.
func (c *Converter) Get(key string) (lexpress.Record, error) {
	lines, err := c.command("GET " + device.QuoteField(key))
	if err != nil {
		return nil, err
	}
	rec := lexpress.NewRecord()
	for _, line := range lines {
		if !strings.HasPrefix(line, "250-FIELD ") {
			continue
		}
		if err := parseAssignmentsInto(rec, strings.TrimPrefix(line, "250-FIELD ")); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// Dump implements device.Converter.
func (c *Converter) Dump() ([]lexpress.Record, error) {
	lines, err := c.command("DUMP")
	if err != nil {
		return nil, err
	}
	var out []lexpress.Record
	for _, line := range lines {
		if !strings.HasPrefix(line, "250-MBX ") {
			continue
		}
		rec, err := parseAssignments(strings.TrimPrefix(line, "250-MBX "))
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

func parseAssignments(s string) (lexpress.Record, error) {
	rec := lexpress.NewRecord()
	if err := parseAssignmentsInto(rec, s); err != nil {
		return nil, err
	}
	return rec, nil
}

// parseAssignmentsInto tokenizes s once (honoring quotes) and folds each
// FIELD=value token into rec.
func parseAssignmentsInto(rec lexpress.Record, s string) error {
	tokens, err := device.SplitFields(s)
	if err != nil {
		return err
	}
	for _, t := range tokens {
		i := strings.IndexByte(t, '=')
		if i <= 0 {
			return fmt.Errorf("msgplat: bad assignment %q", t)
		}
		rec.Set(t[:i], t[i+1:])
	}
	return nil
}

// encodeUserAssignments renders the user-settable non-empty fields.
func encodeUserAssignments(rec lexpress.Record) string {
	var parts []string
	for _, f := range Fields {
		if f == KeyField || f == GeneratedField {
			continue
		}
		if v := rec.First(f); v != "" {
			parts = append(parts, f+"="+device.QuoteField(v))
		}
	}
	return strings.Join(parts, " ")
}

// encodeAllUserFields renders every user-settable field, clearing absent
// ones so the stored record converges to rec.
func encodeAllUserFields(rec lexpress.Record) string {
	var parts []string
	for _, f := range Fields {
		if f == KeyField || f == GeneratedField {
			continue
		}
		parts = append(parts, f+"="+device.QuoteField(rec.First(f)))
	}
	return strings.Join(parts, " ")
}

func (c *Converter) subscribeLoop(r *bufio.Reader) {
	defer close(c.notifs)
	var cur *device.Notification
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		if !strings.HasPrefix(line, "* ") {
			continue
		}
		body := strings.TrimPrefix(line, "* ")
		switch {
		case strings.HasPrefix(body, "EVENT "):
			tokens, err := device.SplitFields(strings.TrimPrefix(body, "EVENT "))
			if err != nil || len(tokens) != 3 {
				cur = nil
				continue
			}
			n := device.Notification{Device: DeviceName}
			switch tokens[0] {
			case "ADD":
				n.Op = lexpress.OpAdd
			case "MOD":
				n.Op = lexpress.OpModify
			case "DEL":
				n.Op = lexpress.OpDelete
			default:
				continue
			}
			n.Session = strings.TrimPrefix(tokens[1], "SESSION=")
			n.Key = strings.TrimPrefix(tokens[2], "KEY=")
			cur = &n
		case strings.HasPrefix(body, "OLD "):
			if cur != nil {
				if rec, err := parseAssignments(strings.TrimPrefix(body, "OLD ")); err == nil {
					cur.Old = rec
				}
			}
		case strings.HasPrefix(body, "NEW "):
			if cur != nil {
				if rec, err := parseAssignments(strings.TrimPrefix(body, "NEW ")); err == nil {
					cur.New = rec
				}
			}
		case body == "END":
			if cur != nil && cur.Session != c.session {
				select {
				case c.notifs <- *cur:
				default:
				}
			}
			cur = nil
		}
	}
}
