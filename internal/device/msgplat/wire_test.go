package msgplat

// Raw wire-protocol tests for the messaging platform's numeric-response
// protocol.

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

type wire struct {
	t  *testing.T
	nc net.Conn
	r  *bufio.Reader
}

func dialWire(t *testing.T, addr string) *wire {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	w := &wire{t: t, nc: nc, r: bufio.NewReader(nc)}
	w.expect("220") // greeting
	return w
}

func (w *wire) send(line string) {
	w.t.Helper()
	if _, err := fmt.Fprintf(w.nc, "%s\r\n", line); err != nil {
		w.t.Fatal(err)
	}
}

func (w *wire) expect(prefix string) string {
	w.t.Helper()
	line, err := w.r.ReadString('\n')
	if err != nil {
		w.t.Fatalf("read: %v", err)
	}
	line = strings.TrimRight(line, "\r\n")
	if !strings.HasPrefix(line, prefix) {
		w.t.Fatalf("got %q, want prefix %q", line, prefix)
	}
	return line
}

func TestWireSession(t *testing.T) {
	_, addr := startMP(t)
	w := dialWire(t, addr)
	w.send("HELO console")
	w.expect("250 hello console")
	w.send(`ADD 9000 Name="John Doe" COS=1`)
	reply := w.expect("250 OK ID=MBX")
	id := strings.TrimPrefix(reply, "250 OK ID=")
	w.send("GET 9000")
	w.expect("250-FIELD Mailbox=9000")
	w.expect("250-FIELD MailboxID=" + id)
	w.expect(`250-FIELD Name="John Doe"`)
	w.expect("250-FIELD COS=1")
	w.expect("250 END")
	w.send("MOD 9000 COS=")
	w.expect("250 OK")
	w.send("DEL 9000")
	w.expect("250 OK")
	w.send("DEL 9000")
	w.expect("550")
	w.send("QUIT")
	w.expect("221")
}

func TestWireErrorReplies(t *testing.T) {
	_, addr := startMP(t)
	w := dialWire(t, addr)
	w.send("HELO x")
	w.expect("250")
	w.send("ADD") // missing mailbox
	w.expect("501")
	w.send("ADD 1 Shoe=42") // unknown field
	w.expect("501")
	w.send("NONSENSE")
	w.expect("500")
	w.send("ADD 1 Name=ok")
	w.expect("250 OK ID=")
	w.send("ADD 1 Name=dup")
	w.expect("551")
}

func TestWireEventStream(t *testing.T) {
	m, addr := startMP(t)
	w := dialWire(t, addr)
	w.send("HELO watcher")
	w.expect("250")
	w.send("SUBSCRIBE")
	w.expect("250 OK")

	rec := mailbox("42", "Eve")
	if _, err := m.Store.Add("voicemail-console", rec); err != nil {
		t.Fatal(err)
	}
	w.expect("* EVENT ADD SESSION=voicemail-console KEY=42")
	w.expect("* NEW Mailbox=42")
	w.expect("* END")
}
