// Package device defines the unified device API that every MetaComm filter's
// protocol converter provides (paper §4.1): retrieve a record by key,
// add/modify/delete records, dump all relevant data (for synchronization),
// and receive change notifications from the device.
//
// It also provides the common in-memory record store the simulated devices
// (Definity PBX, messaging platform) are built on. The store is faithful to
// the paper's substrate assumptions: weakly typed (every field is a string),
// atomic only per record, no transactions, and it reports committed changes
// to subscribers together with the session that made them — which is how
// direct device updates (DDUs) are distinguished from updates applied by
// MetaComm itself.
package device

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"metacomm/internal/lexpress"
)

// Well-known errors returned by device operations.
var (
	ErrNotFound = errors.New("device: record not found")
	ErrExists   = errors.New("device: record already exists")
	ErrDown     = errors.New("device: unavailable")
)

// Notification reports one committed change at a device.
type Notification struct {
	// Device is the device name ("pbx", "msgplat").
	Device string
	// Session identifies who committed the change; filters use it to
	// ignore the echo of updates they applied themselves.
	Session string
	Op      lexpress.OpKind
	Key     string
	Old     lexpress.Record
	New     lexpress.Record
}

// Converter is the unified API for one repository (the protocol-converter
// half of a filter).
type Converter interface {
	// Name returns the repository name used in descriptors and mappings.
	Name() string
	// Get retrieves a record by key.
	Get(key string) (lexpress.Record, error)
	// Add creates a record; the returned record includes any
	// device-generated fields (paper §5.5).
	Add(rec lexpress.Record) (lexpress.Record, error)
	// Modify replaces the record stored under key with rec.
	Modify(key string, rec lexpress.Record) (lexpress.Record, error)
	// Delete removes the record under key.
	Delete(key string) error
	// Dump returns all records (synchronization support).
	Dump() ([]lexpress.Record, error)
	// Notifications returns the channel of committed changes.
	Notifications() <-chan Notification
	// Close releases the converter's connection.
	Close() error
}

// Store is the weakly-typed record store inside a simulated device.
type Store struct {
	name    string
	keyAttr string

	mu      sync.Mutex
	records map[string]lexpress.Record
	subs    []chan Notification
	down    bool
	// failNext holds error messages to inject on upcoming updates
	// (failure-injection for the error-logging benches).
	failNext []string
	// failRate makes each update fail with this probability (fault
	// injection for the outbox/chaos tests); failRng draws from a seeded
	// stream so runs are reproducible. Both are guarded by mu.
	failRate float64
	failRng  *rand.Rand
	seq      uint64
	// generate, when set, is called on Add to produce device-generated
	// fields (e.g. a unique mailbox id).
	generate func(n uint64, rec lexpress.Record)
	// latency is simulated per-update processing time in nanoseconds. Real
	// switch administration takes milliseconds per command; the experiments
	// use this to reproduce that regime.
	latency atomic.Int64
}

// NewStore builds a device store. keyAttr names the key field.
func NewStore(name, keyAttr string) *Store {
	return &Store{name: name, keyAttr: keyAttr, records: map[string]lexpress.Record{}}
}

// SetGenerator installs a device-generated-field hook applied on Add.
func (s *Store) SetGenerator(f func(n uint64, rec lexpress.Record)) { s.generate = f }

// SetLatency simulates the device's per-update processing time: every
// Add/Modify/Delete sleeps d before committing. The sleep happens outside
// the store lock, so concurrent administration sessions process
// concurrently — like separate craft sessions on a real switch.
func (s *Store) SetLatency(d time.Duration) { s.latency.Store(int64(d)) }

func (s *Store) simulateWork() {
	if d := s.latency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// Name returns the device name.
func (s *Store) Name() string { return s.name }

// KeyAttr returns the name of the key field.
func (s *Store) KeyAttr() string { return s.keyAttr }

// SetDown simulates the device becoming unreachable (or reachable again).
func (s *Store) SetDown(down bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.down = down
}

// FailNext injects a failure: the next update operation returns an error
// with the given message.
func (s *Store) FailNext(msg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failNext = append(s.failNext, msg)
}

// SetFailRate makes every update operation fail with probability rate
// (0 disables). The failures are drawn from a stream seeded with seed, so
// a logged seed reproduces a chaos run exactly.
func (s *Store) SetFailRate(rate float64, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failRate = rate
	if rate > 0 {
		s.failRng = rand.New(rand.NewSource(seed))
	} else {
		s.failRng = nil
	}
}

func (s *Store) takeInjectedFailure() error {
	if len(s.failNext) > 0 {
		msg := s.failNext[0]
		s.failNext = s.failNext[1:]
		return fmt.Errorf("device %s: %s", s.name, msg)
	}
	if s.failRate > 0 && s.failRng != nil && s.failRng.Float64() < s.failRate {
		return fmt.Errorf("device %s: injected transient failure", s.name)
	}
	return nil
}

// Subscribe registers a notification channel. The channel is buffered; a
// full channel drops the oldest pending notification (devices do not block
// on slow listeners — lost notifications are exactly what the UM's
// synchronization facility recovers from).
func (s *Store) Subscribe() <-chan Notification {
	ch := make(chan Notification, 256)
	s.mu.Lock()
	s.subs = append(s.subs, ch)
	s.mu.Unlock()
	return ch
}

// Unsubscribe removes a channel returned by Subscribe and closes it.
// Closing is safe here: sends only happen under s.mu, which we hold.
func (s *Store) Unsubscribe(ch <-chan Notification) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, c := range s.subs {
		if (<-chan Notification)(c) == ch {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			close(c)
			return
		}
	}
}

func (s *Store) notifyLocked(n Notification) {
	n.Device = s.name
	for _, ch := range s.subs {
		for {
			select {
			case ch <- n:
			default:
				// Drop the oldest to make room; the subscriber will
				// resynchronize.
				select {
				case <-ch:
				default:
				}
				continue
			}
			break
		}
	}
}

// Get returns a copy of the record under key.
func (s *Store) Get(key string) (lexpress.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil, ErrDown
	}
	rec, ok := s.records[key]
	if !ok {
		return nil, ErrNotFound
	}
	return rec.Clone(), nil
}

// Add commits a new record. session identifies the committer.
func (s *Store) Add(session string, rec lexpress.Record) (lexpress.Record, error) {
	s.simulateWork()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil, ErrDown
	}
	if err := s.takeInjectedFailure(); err != nil {
		return nil, err
	}
	key := rec.First(s.keyAttr)
	if key == "" {
		return nil, fmt.Errorf("device %s: record has no %s", s.name, s.keyAttr)
	}
	if _, dup := s.records[key]; dup {
		return nil, ErrExists
	}
	stored := rec.Clone()
	s.seq++
	if s.generate != nil {
		s.generate(s.seq, stored)
	}
	s.records[key] = stored
	s.notifyLocked(Notification{Session: session, Op: lexpress.OpAdd, Key: key, New: stored.Clone()})
	return stored.Clone(), nil
}

// Modify atomically replaces the record under key. Missing records error;
// there is deliberately no upsert (the conditional-update logic in the
// filters exists because devices behave this way).
func (s *Store) Modify(session, key string, rec lexpress.Record) (lexpress.Record, error) {
	s.simulateWork()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil, ErrDown
	}
	if err := s.takeInjectedFailure(); err != nil {
		return nil, err
	}
	old, ok := s.records[key]
	if !ok {
		return nil, ErrNotFound
	}
	stored := rec.Clone()
	if stored.First(s.keyAttr) == "" {
		stored.Set(s.keyAttr, key)
	}
	newKey := stored.First(s.keyAttr)
	if newKey != key {
		if _, dup := s.records[newKey]; dup {
			return nil, ErrExists
		}
		delete(s.records, key)
	}
	s.records[newKey] = stored
	if old.Equal(stored) {
		// No observable change: devices do not emit commit notifications
		// for no-op updates (this is also what terminates the reapply
		// cycle of §5.4).
		return stored.Clone(), nil
	}
	s.notifyLocked(Notification{Session: session, Op: lexpress.OpModify, Key: newKey, Old: old.Clone(), New: stored.Clone()})
	return stored.Clone(), nil
}

// Delete removes the record under key.
func (s *Store) Delete(session, key string) error {
	s.simulateWork()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return ErrDown
	}
	if err := s.takeInjectedFailure(); err != nil {
		return err
	}
	old, ok := s.records[key]
	if !ok {
		return ErrNotFound
	}
	delete(s.records, key)
	s.notifyLocked(Notification{Session: session, Op: lexpress.OpDelete, Key: key, Old: old.Clone()})
	return nil
}

// Dump returns copies of all records, sorted by key.
func (s *Store) Dump() ([]lexpress.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil, ErrDown
	}
	keys := make([]string, 0, len(s.records))
	for k := range s.records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lexpress.Record, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.records[k].Clone())
	}
	return out, nil
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// quoteField renders a field value for the line protocols: values with
// spaces or quotes are double-quoted.
func quoteField(v string) string {
	if v != "" && !strings.ContainsAny(v, " \t\"\\") {
		return v
	}
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '"', '\\':
			b.WriteByte('\\')
		}
		b.WriteByte(v[i])
	}
	b.WriteByte('"')
	return b.String()
}

// QuoteField is exported for the device wire protocols.
func QuoteField(v string) string { return quoteField(v) }

// SplitFields tokenizes a protocol line into fields shell-style: whitespace
// separates tokens, double quotes group (and may appear mid-token, so
// FIELD="two words" is one token), backslash escapes inside quotes.
func SplitFields(line string) ([]string, error) {
	var out []string
	var b strings.Builder
	inToken, inQuote := false, false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQuote:
			switch c {
			case '\\':
				if i+1 >= len(line) {
					return nil, errors.New("device: trailing backslash")
				}
				i++
				b.WriteByte(line[i])
			case '"':
				inQuote = false
			default:
				b.WriteByte(c)
			}
		case c == '"':
			inQuote = true
			inToken = true
		case c == ' ' || c == '\t':
			if inToken {
				out = append(out, b.String())
				b.Reset()
				inToken = false
			}
		default:
			b.WriteByte(c)
			inToken = true
		}
	}
	if inQuote {
		return nil, errors.New("device: unterminated quote")
	}
	if inToken {
		out = append(out, b.String())
	}
	return out, nil
}
