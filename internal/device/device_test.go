package device

import (
	"errors"
	"testing"
	"testing/quick"

	"metacomm/internal/lexpress"
)

func rec(kv ...string) lexpress.Record {
	r := lexpress.NewRecord()
	for i := 0; i < len(kv); i += 2 {
		r.Set(kv[i], kv[i+1])
	}
	return r
}

func TestStoreCRUD(t *testing.T) {
	s := NewStore("pbx", "extension")
	if _, err := s.Add("admin", rec("Extension", "2-9000", "Name", "John Doe")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("2-9000")
	if err != nil {
		t.Fatal(err)
	}
	if got.First("name") != "John Doe" {
		t.Errorf("name = %q", got.First("name"))
	}
	if _, err := s.Add("admin", rec("Extension", "2-9000")); !errors.Is(err, ErrExists) {
		t.Errorf("dup add err = %v", err)
	}
	if _, err := s.Modify("admin", "2-9000", rec("Extension", "2-9000", "Name", "J")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("admin", "2-9000"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("2-9000"); !errors.Is(err, ErrNotFound) {
		t.Errorf("get err = %v", err)
	}
	if err := s.Delete("admin", "2-9000"); !errors.Is(err, ErrNotFound) {
		t.Errorf("del err = %v", err)
	}
}

func TestStoreNotificationsCarrySession(t *testing.T) {
	s := NewStore("pbx", "extension")
	ch := s.Subscribe()
	if _, err := s.Add("operator", rec("Extension", "1", "Name", "A")); err != nil {
		t.Fatal(err)
	}
	n := <-ch
	if n.Session != "operator" || n.Op != lexpress.OpAdd || n.Key != "1" {
		t.Errorf("notification = %+v", n)
	}
	if n.New.First("name") != "A" {
		t.Error("new image missing")
	}
}

func TestNoOpModifyDoesNotNotify(t *testing.T) {
	s := NewStore("pbx", "extension")
	if _, err := s.Add("a", rec("Extension", "1", "Name", "A")); err != nil {
		t.Fatal(err)
	}
	ch := s.Subscribe()
	if _, err := s.Modify("a", "1", rec("Extension", "1", "Name", "A")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-ch:
		t.Errorf("no-op modify notified: %+v", n)
	default:
	}
}

func TestKeyChangeViaModify(t *testing.T) {
	s := NewStore("pbx", "extension")
	if _, err := s.Add("a", rec("Extension", "1", "Name", "A")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Modify("a", "1", rec("Extension", "2", "Name", "A")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("1"); !errors.Is(err, ErrNotFound) {
		t.Error("old key still resolves")
	}
	if _, err := s.Get("2"); err != nil {
		t.Error("new key missing")
	}
}

func TestDownAndFailureInjection(t *testing.T) {
	s := NewStore("pbx", "extension")
	s.SetDown(true)
	if _, err := s.Get("x"); !errors.Is(err, ErrDown) {
		t.Errorf("down get err = %v", err)
	}
	if _, err := s.Dump(); !errors.Is(err, ErrDown) {
		t.Errorf("down dump err = %v", err)
	}
	s.SetDown(false)
	s.FailNext("extension range exhausted")
	_, err := s.Add("a", rec("Extension", "1"))
	if err == nil || errors.Is(err, ErrExists) {
		t.Errorf("injected failure err = %v", err)
	}
	// Next op succeeds.
	if _, err := s.Add("a", rec("Extension", "1")); err != nil {
		t.Fatal(err)
	}
}

func TestDumpSortedAndIsolated(t *testing.T) {
	s := NewStore("pbx", "extension")
	for _, k := range []string{"3", "1", "2"} {
		if _, err := s.Add("a", rec("Extension", k)); err != nil {
			t.Fatal(err)
		}
	}
	dump, err := s.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if len(dump) != 3 || dump[0].First("extension") != "1" || dump[2].First("extension") != "3" {
		t.Errorf("dump = %v", dump)
	}
	dump[0].Set("Name", "mutated")
	got, _ := s.Get("1")
	if got.Has("name") {
		t.Error("dump aliases store")
	}
}

func TestSplitFieldsQuoting(t *testing.T) {
	cases := map[string][]string{
		`a b c`:                       {"a", "b", "c"},
		`add station Name "John Doe"`: {"add", "station", "Name", "John Doe"},
		`NAME="John Doe" COS=1`:       {"NAME=John Doe", "COS=1"},
		`x ""`:                        {"x", ""},
		`val "with \"quote\""`:        {"val", `with "quote"`},
		``:                            nil,
		`  spaced   out  `:            {"spaced", "out"},
	}
	for in, want := range cases {
		got, err := SplitFields(in)
		if err != nil {
			t.Fatalf("SplitFields(%q): %v", in, err)
		}
		if len(got) != len(want) {
			t.Fatalf("SplitFields(%q) = %v, want %v", in, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("SplitFields(%q)[%d] = %q, want %q", in, i, got[i], want[i])
			}
		}
	}
	if _, err := SplitFields(`"unterminated`); err == nil {
		t.Error("unterminated quote accepted")
	}
	if _, err := SplitFields(`"trailing\`); err == nil {
		t.Error("trailing backslash accepted")
	}
}

func TestQuoteFieldRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		clean := sanitize(s)
		got, err := SplitFields("prefix " + QuoteField(clean))
		if err != nil || len(got) != 2 {
			return false
		}
		return got[1] == clean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r >= 0x20 && r < 0x7F {
			out = append(out, r)
		}
	}
	return string(out)
}

func TestSubscribeDropOldestWhenFull(t *testing.T) {
	s := NewStore("pbx", "extension")
	ch := s.Subscribe()
	for i := 0; i < 300; i++ { // exceeds the 256 buffer
		if _, err := s.Add("a", rec("Extension", itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	// The channel must hold the most recent items, not block the store.
	var last Notification
	for {
		select {
		case n := <-ch:
			last = n
			continue
		default:
		}
		break
	}
	if last.Key != itoa(299) {
		t.Errorf("last buffered = %q, want 299 (oldest should have been dropped)", last.Key)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestGeneratorRunsOnAdd(t *testing.T) {
	s := NewStore("mp", "mailbox")
	s.SetGenerator(func(n uint64, r lexpress.Record) { r.Set("id", "GEN") })
	got, err := s.Add("a", rec("Mailbox", "9000"))
	if err != nil {
		t.Fatal(err)
	}
	if got.First("id") != "GEN" {
		t.Error("generator did not run")
	}
	stored, _ := s.Get("9000")
	if stored.First("id") != "GEN" {
		t.Error("generated field not persisted")
	}
}

func TestStoreConverterEchoSuppression(t *testing.T) {
	s := NewStore("pager", "pin")
	c := NewStoreConverter(s, "metacomm")
	defer c.Close()
	if c.Name() != "pager" {
		t.Errorf("name = %q", c.Name())
	}
	// Own update: no notification.
	if _, err := c.Add(rec("pin", "P1", "holder", "A")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-c.Notifications():
		t.Fatalf("echoed own update: %+v", n)
	default:
	}
	// Foreign update: delivered.
	if _, err := s.Modify("console", "P1", rec("pin", "P1", "holder", "B")); err != nil {
		t.Fatal(err)
	}
	n := <-c.Notifications()
	if n.Session != "console" || n.New.First("holder") != "B" {
		t.Errorf("notification = %+v", n)
	}
	// CRUD surface works.
	got, err := c.Get("P1")
	if err != nil || got.First("holder") != "B" {
		t.Errorf("get = %v, %v", got, err)
	}
	dump, err := c.Dump()
	if err != nil || len(dump) != 1 {
		t.Errorf("dump = %v, %v", dump, err)
	}
	if err := c.Delete("P1"); err != nil {
		t.Fatal(err)
	}
	// Close unsubscribes; the pump channel drains and closes.
	c.Close()
	c.Close() // idempotent
	for range c.Notifications() {
	}
}

func TestSetFailRateDeterministicAndDisables(t *testing.T) {
	// Two stores seeded identically must fail on exactly the same
	// operations — chaos runs log their seed precisely so a failure
	// schedule can be replayed.
	run := func(seed int64) []bool {
		s := NewStore("pbx", "extension")
		if _, err := s.Add("a", rec("Extension", "1", "Name", "A")); err != nil {
			t.Fatal(err)
		}
		s.SetFailRate(0.5, seed)
		outcomes := make([]bool, 64)
		for i := range outcomes {
			_, err := s.Modify("a", "1", rec("Extension", "1", "Name", "A", "Seq", string(rune('a'+i%26))))
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(42), run(42)
	failed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: outcome differs across identically seeded runs", i)
		}
		if a[i] {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Errorf("fail rate 0.5 produced %d/%d failures; injection looks broken", failed, len(a))
	}
	// A different seed gives a different schedule (overwhelmingly likely).
	c := run(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical failure schedules")
	}
	// Rate 0 disables injection entirely.
	s := NewStore("pbx", "extension")
	if _, err := s.Add("a", rec("Extension", "1")); err != nil {
		t.Fatal(err)
	}
	s.SetFailRate(0.9, 1)
	s.SetFailRate(0, 0)
	for i := 0; i < 32; i++ {
		if _, err := s.Modify("a", "1", rec("Extension", "1", "N", "x")); err != nil {
			t.Fatalf("op %d failed after SetFailRate(0, 0): %v", i, err)
		}
	}
}
