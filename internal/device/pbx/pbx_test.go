package pbx

import (
	"errors"
	"testing"
	"time"

	"metacomm/internal/device"
	"metacomm/internal/lexpress"
)

func startPBX(t testing.TB) (*PBX, string) {
	t.Helper()
	p := New()
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p, addr.String()
}

func dial(t testing.TB, addr, session string) *Converter {
	t.Helper()
	c, err := Dial(addr, session)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func station(ext, name string) lexpress.Record {
	r := lexpress.NewRecord()
	r.Set("Extension", ext)
	r.Set("Name", name)
	return r
}

func TestConverterCRUDOverWire(t *testing.T) {
	_, addr := startPBX(t)
	c := dial(t, addr, "metacomm")

	rec := station("2-9000", "John Doe")
	rec.Set("Room", "2C 401") // space forces quoting on the wire
	if _, err := c.Add(rec); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("2-9000")
	if err != nil {
		t.Fatal(err)
	}
	if got.First("Name") != "John Doe" || got.First("Room") != "2C 401" {
		t.Errorf("got = %v", got)
	}

	rec.Set("Name", "John Q Doe")
	rec.Set("Room") // clear
	if _, err := c.Modify("2-9000", rec); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Get("2-9000")
	if got.First("Name") != "John Q Doe" {
		t.Errorf("name = %q", got.First("Name"))
	}
	if got.Has("Room") {
		t.Error("cleared field persisted")
	}

	if err := c.Delete("2-9000"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("2-9000"); !errors.Is(err, device.ErrNotFound) {
		t.Errorf("get err = %v", err)
	}
}

func TestConverterErrors(t *testing.T) {
	_, addr := startPBX(t)
	c := dial(t, addr, "metacomm")
	if _, err := c.Add(station("1", "A")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(station("1", "A")); !errors.Is(err, device.ErrExists) {
		t.Errorf("dup err = %v", err)
	}
	if err := c.Delete("zzz"); !errors.Is(err, device.ErrNotFound) {
		t.Errorf("del err = %v", err)
	}
	if _, err := c.Modify("zzz", station("zzz", "X")); !errors.Is(err, device.ErrNotFound) {
		t.Errorf("mod err = %v", err)
	}
}

func TestConverterDump(t *testing.T) {
	p, addr := startPBX(t)
	for i := 0; i < 5; i++ {
		if _, err := p.Store.Add("seed", station("ext-"+string(rune('a'+i)), "user")); err != nil {
			t.Fatal(err)
		}
	}
	c := dial(t, addr, "metacomm")
	recs, err := c.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("dump = %d records", len(recs))
	}
	if recs[0].First("Extension") != "ext-a" {
		t.Errorf("first = %v", recs[0])
	}
}

// TestDDUNotificationReachesConverter is the DDU path of paper §4.4: an
// update applied directly at the device must reach the filter.
func TestDDUNotificationReachesConverter(t *testing.T) {
	p, addr := startPBX(t)
	c := dial(t, addr, "metacomm")

	// A direct device update by a switch administrator.
	admin := dial(t, addr, "craft-terminal")
	if _, err := admin.Add(station("2-9000", "John Doe")); err != nil {
		t.Fatal(err)
	}

	select {
	case n := <-c.Notifications():
		if n.Op != lexpress.OpAdd || n.Key != "2-9000" || n.Session != "craft-terminal" {
			t.Errorf("notification = %+v", n)
		}
		if n.New.First("name") != "John Doe" {
			t.Errorf("new image = %v", n.New)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no notification")
	}
	_ = p
}

// TestOwnUpdatesAreSuppressed verifies echo suppression: the converter must
// not see notifications for updates it applied itself.
func TestOwnUpdatesAreSuppressed(t *testing.T) {
	_, addr := startPBX(t)
	c := dial(t, addr, "metacomm")
	if _, err := c.Add(station("1", "A")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Modify("1", station("1", "B")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-c.Notifications():
		t.Errorf("echoed own update: %+v", n)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestModifyNotificationCarriesOldAndNew(t *testing.T) {
	_, addr := startPBX(t)
	c := dial(t, addr, "metacomm")
	admin := dial(t, addr, "craft")
	if _, err := admin.Add(station("1", "Before")); err != nil {
		t.Fatal(err)
	}
	<-c.Notifications() // the add
	if _, err := admin.Modify("1", station("1", "After")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-c.Notifications():
		if n.Old.First("name") != "Before" || n.New.First("name") != "After" {
			t.Errorf("old/new = %v / %v", n.Old, n.New)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no modify notification")
	}
}

func TestDeviceDownSurfacesOverWire(t *testing.T) {
	p, addr := startPBX(t)
	c := dial(t, addr, "metacomm")
	p.Store.SetDown(true)
	if _, err := c.Get("1"); !errors.Is(err, device.ErrDown) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.Dump(); !errors.Is(err, device.ErrDown) {
		t.Errorf("dump err = %v", err)
	}
}

func TestProtocolRejectsUnknownFields(t *testing.T) {
	_, addr := startPBX(t)
	c := dial(t, addr, "metacomm")
	bad := lexpress.NewRecord()
	bad.Set("Extension", "1")
	bad.Set("FavoriteColor", "blue")
	if _, err := c.Add(bad); err == nil {
		t.Error("unknown field accepted — the device schema is closed")
	}
}
