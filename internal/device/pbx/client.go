package pbx

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"metacomm/internal/device"
	"metacomm/internal/lexpress"
)

// Converter is the PBX filter's protocol converter: it speaks the switch's
// proprietary administration protocol over two TCP connections — one for
// commands, one in monitor mode for change notifications — and presents the
// unified device API of paper §4.1.
type Converter struct {
	session string
	device  string

	mu  sync.Mutex
	cmd net.Conn
	r   *bufio.Reader
	w   *bufio.Writer

	mon    net.Conn
	notifs chan device.Notification
	closed bool
}

var _ device.Converter = (*Converter)(nil)

// Dial connects a converter to a PBX. session names this administrator;
// notifications committed under the same session name are suppressed so the
// filter does not see the echo of its own updates.
func Dial(addr, session string) (*Converter, error) {
	return DialNamed(addr, session, DeviceName)
}

// DialNamed connects a converter to a PBX registered under a non-default
// repository name (multi-switch deployments).
func DialNamed(addr, session, deviceName string) (*Converter, error) {
	c, err := dialCommand(addr, session, deviceName)
	if err != nil {
		return nil, err
	}
	mon, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.mon = mon
	mw := bufio.NewWriter(mon)
	mr := bufio.NewReader(mon)
	fmt.Fprintf(mw, "login %s-monitor\nmonitor on\n", device.QuoteField(session))
	if err := mw.Flush(); err != nil {
		c.Close()
		return nil, err
	}
	for i := 0; i < 2; i++ { // login + monitor replies
		line, err := mr.ReadString('\n')
		if err != nil || strings.TrimSpace(line) != "ok" {
			c.Close()
			return nil, fmt.Errorf("pbx: monitor setup failed: %q %v", line, err)
		}
	}
	go c.monitorLoop(mr)
	return c, nil
}

// DialCommandOnly connects a converter without a monitor connection. It is
// for pooled administration sessions (device.Pool): extra sessions share
// the update load, while only the pool's primary watches for direct device
// updates. Its Notifications channel never delivers.
func DialCommandOnly(addr, session, deviceName string) (*Converter, error) {
	return dialCommand(addr, session, deviceName)
}

// dialCommand establishes the command connection and logs in.
func dialCommand(addr, session, deviceName string) (*Converter, error) {
	cmd, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Converter{
		session: session,
		device:  deviceName,
		cmd:     cmd,
		r:       bufio.NewReader(cmd),
		w:       bufio.NewWriter(cmd),
		notifs:  make(chan device.Notification, 256),
	}
	if _, err := c.roundTrip(fmt.Sprintf("login %s", device.QuoteField(session))); err != nil {
		cmd.Close()
		return nil, err
	}
	return c, nil
}

// Name implements device.Converter.
func (c *Converter) Name() string { return c.device }

// Close shuts both connections down.
func (c *Converter) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	fmt.Fprintln(c.w, "logout")
	c.w.Flush()
	c.cmd.Close()
	if c.mon != nil {
		c.mon.Close()
	}
	return nil
}

// Notifications implements device.Converter.
func (c *Converter) Notifications() <-chan device.Notification { return c.notifs }

// roundTrip sends one command line and reads a single-line reply.
func (c *Converter) roundTrip(line string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTripLocked(line)
}

func (c *Converter) roundTripLocked(line string) (string, error) {
	if c.closed {
		return "", errors.New("pbx: converter closed")
	}
	fmt.Fprintln(c.w, line)
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	reply, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(reply, "\r\n"), nil
}

func parseError(reply string) error {
	if reply == "ok" {
		return nil
	}
	if !strings.HasPrefix(reply, "error ") {
		return fmt.Errorf("pbx: unexpected reply %q", reply)
	}
	rest := strings.TrimPrefix(reply, "error ")
	code, msg := "", rest
	if i := strings.IndexByte(rest, ' '); i > 0 {
		code, msg = rest[:i], rest[i+1:]
	}
	switch code {
	case "1":
		return fmt.Errorf("%w: %s", device.ErrNotFound, msg)
	case "2":
		return fmt.Errorf("%w: %s", device.ErrExists, msg)
	case "4":
		return fmt.Errorf("%w: %s", device.ErrDown, msg)
	}
	return fmt.Errorf("pbx: %s", msg)
}

// Get implements device.Converter via "display station".
func (c *Converter) Get(key string) (lexpress.Record, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("pbx: converter closed")
	}
	fmt.Fprintf(c.w, "display station %s\n", device.QuoteField(key))
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	rec := lexpress.NewRecord()
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "end":
			return rec, nil
		case strings.HasPrefix(line, "field "):
			fields, err := device.SplitFields(line)
			if err != nil || len(fields) != 3 {
				return nil, fmt.Errorf("pbx: bad field line %q", line)
			}
			rec.Set(fields[1], fields[2])
		case strings.HasPrefix(line, "error "):
			return nil, parseError(line)
		default:
			return nil, fmt.Errorf("pbx: unexpected display line %q", line)
		}
	}
}

// Add implements device.Converter via "add station".
func (c *Converter) Add(rec lexpress.Record) (lexpress.Record, error) {
	for _, a := range rec.Attrs() {
		if !validField(a) {
			return nil, fmt.Errorf("pbx: unknown field %q", a)
		}
	}
	reply, err := c.roundTrip("add station " + encodeFields(rec))
	if err != nil {
		return nil, err
	}
	if err := parseError(reply); err != nil {
		return nil, err
	}
	return rec.Clone(), nil
}

// Modify implements device.Converter via "change station": all fields of
// the switch vocabulary are written, absent ones cleared, so the stored
// record converges to rec exactly.
func (c *Converter) Modify(key string, rec lexpress.Record) (lexpress.Record, error) {
	var parts []string
	for _, f := range Fields {
		parts = append(parts, f, device.QuoteField(rec.First(f)))
	}
	reply, err := c.roundTrip(fmt.Sprintf("change station %s %s",
		device.QuoteField(key), strings.Join(parts, " ")))
	if err != nil {
		return nil, err
	}
	if err := parseError(reply); err != nil {
		return nil, err
	}
	return rec.Clone(), nil
}

// Delete implements device.Converter via "remove station".
func (c *Converter) Delete(key string) error {
	reply, err := c.roundTrip("remove station " + device.QuoteField(key))
	if err != nil {
		return err
	}
	return parseError(reply)
}

// Dump implements device.Converter via "dump".
func (c *Converter) Dump() ([]lexpress.Record, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("pbx: converter closed")
	}
	fmt.Fprintln(c.w, "dump")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var out []lexpress.Record
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "end":
			return out, nil
		case strings.HasPrefix(line, "record "):
			fields, err := device.SplitFields(strings.TrimPrefix(line, "record "))
			if err != nil {
				return nil, err
			}
			rec, err := decodeFields(fields)
			if err != nil {
				return nil, err
			}
			out = append(out, rec)
		case strings.HasPrefix(line, "error "):
			return nil, parseError(line)
		default:
			return nil, fmt.Errorf("pbx: unexpected dump line %q", line)
		}
	}
}

// monitorLoop parses notify blocks and forwards foreign-session ones.
func (c *Converter) monitorLoop(r *bufio.Reader) {
	defer close(c.notifs)
	var cur *device.Notification
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		fields, err := device.SplitFields(line)
		if err != nil || len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "notify":
			// notify <op> session <name> key <ext>
			if len(fields) != 6 {
				continue
			}
			n := device.Notification{Device: c.device, Session: fields[3], Key: fields[5]}
			switch fields[1] {
			case "add":
				n.Op = lexpress.OpAdd
			case "change":
				n.Op = lexpress.OpModify
			case "remove":
				n.Op = lexpress.OpDelete
			default:
				continue
			}
			cur = &n
		case "old":
			if cur != nil {
				if rec, err := decodeFields(fields[1:]); err == nil {
					cur.Old = rec
				}
			}
		case "new":
			if cur != nil {
				if rec, err := decodeFields(fields[1:]); err == nil {
					cur.New = rec
				}
			}
		case "end":
			if cur != nil && cur.Session != c.session {
				select {
				case c.notifs <- *cur:
				default:
				}
			}
			cur = nil
		}
	}
}
