package pbx

// Raw wire-protocol tests: drive the administration protocol the way a
// human on a terminal (or a legacy provisioning script) would, without the
// Converter.

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

type wireSession struct {
	t  *testing.T
	nc net.Conn
	r  *bufio.Reader
}

func dialWire(t *testing.T, addr string) *wireSession {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &wireSession{t: t, nc: nc, r: bufio.NewReader(nc)}
}

func (s *wireSession) send(line string) {
	s.t.Helper()
	if _, err := fmt.Fprintf(s.nc, "%s\n", line); err != nil {
		s.t.Fatal(err)
	}
}

func (s *wireSession) expect(prefix string) string {
	s.t.Helper()
	line, err := s.r.ReadString('\n')
	if err != nil {
		s.t.Fatalf("read: %v", err)
	}
	line = strings.TrimRight(line, "\r\n")
	if !strings.HasPrefix(line, prefix) {
		s.t.Fatalf("got %q, want prefix %q", line, prefix)
	}
	return line
}

func TestWireSession(t *testing.T) {
	_, addr := startPBX(t)
	s := dialWire(t, addr)

	s.send("login craft")
	s.expect("ok")
	s.send(`add station Extension 2-9000 Name "John Doe" Room 2C-401`)
	s.expect("ok")
	s.send("display station 2-9000")
	s.expect("field Extension 2-9000")
	s.expect(`field Name "John Doe"`)
	s.expect("field Room 2C-401")
	s.expect("end")
	s.send("change station 2-9000 Room \"\"") // clear
	s.expect("ok")
	s.send("display station 2-9000")
	s.expect("field Extension")
	s.expect("field Name")
	s.expect("end") // Room gone
	s.send("remove station 2-9000")
	s.expect("ok")
	s.send("remove station 2-9000")
	s.expect("error 1")
	s.send("logout")
	s.expect("ok")
}

func TestWireErrors(t *testing.T) {
	_, addr := startPBX(t)
	s := dialWire(t, addr)
	s.send("login x")
	s.expect("ok")
	s.send("add station Extension") // odd field count
	s.expect("error 3")
	s.send("add station Shoe 42") // unknown field
	s.expect("error 3")
	s.send("frobnicate")
	s.expect("error 3")
	s.send(`add station Extension "unterminated`)
	s.expect("error 3")
	s.send("display station nope")
	s.expect("error 1")
	// The session survives all of that.
	s.send("add station Extension 1 Name ok")
	s.expect("ok")
}

func TestWireMonitorStream(t *testing.T) {
	p, addr := startPBX(t)
	mon := dialWire(t, addr)
	mon.send("login watcher")
	mon.expect("ok")
	mon.send("monitor on")
	mon.expect("ok")

	// A change committed by someone else streams as a notify block.
	if _, err := p.Store.Add("other-admin", station("2-1", "A")); err != nil {
		t.Fatal(err)
	}
	mon.expect("notify add session other-admin key 2-1")
	mon.expect("new Extension 2-1 Name A")
	mon.expect("end")
}
