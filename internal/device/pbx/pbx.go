// Package pbx simulates the Definity PBX of the paper: station records
// administered through a proprietary line-oriented terminal protocol over
// TCP (in the style of the real switch's administration interface), with
// weak typing (every field is a string), atomic single-record updates, no
// transactions, no triggers — and commit-time change notifications on a
// separate monitor connection, which is the hook MetaComm's PBX filter
// attaches to.
//
// The wire protocol:
//
//	login <session>                      -> ok
//	add station <Field> <value> ...      -> ok | error <code> <msg>
//	change station <ext> <Field> <value> ...  (empty value clears a field)
//	remove station <ext>
//	display station <ext>                -> field lines, then end
//	dump                                 -> record lines, then end
//	monitor on                           -> ok, then async notify blocks
//	logout
//
// Notify blocks on a monitor connection:
//
//	notify <add|change|remove> session <name> key <ext>
//	old <Field> <value> ...
//	new <Field> <value> ...
//	end
package pbx

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"metacomm/internal/device"
	"metacomm/internal/lexpress"
)

// Fields of a Definity station record. Extension is the key.
var Fields = []string{"Extension", "Name", "COS", "COR", "Room", "Port"}

// KeyField is the station key field.
const KeyField = "Extension"

// DeviceName is the repository name the PBX reports in descriptors.
const DeviceName = "pbx"

// PBX is the simulated switch.
type PBX struct {
	Store *device.Store

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// New creates a PBX with an empty station store.
func New() *PBX { return NewNamed(DeviceName) }

// NewNamed creates a PBX whose repository name is name — sites with several
// switches (the paper's number-range partitioning, §4.2) run one instance
// per switch, each with its own name and mappings.
func NewNamed(name string) *PBX {
	return &PBX{
		Store: device.NewStore(name, strings.ToLower(KeyField)),
		conns: map[net.Conn]bool{},
	}
}

// Start listens for administration connections on addr.
func (p *PBX) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.listener = l
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				c.Close()
				return
			}
			p.conns[c] = true
			p.mu.Unlock()
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.serve(c)
			}()
		}
	}()
	return l.Addr(), nil
}

// Addr returns the administration listener's address ("" before Start).
func (p *PBX) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.listener == nil {
		return ""
	}
	return p.listener.Addr().String()
}

// Close shuts the PBX down.
func (p *PBX) Close() {
	p.mu.Lock()
	p.closed = true
	if p.listener != nil {
		p.listener.Close()
	}
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func errorCode(err error) int {
	switch {
	case errors.Is(err, device.ErrNotFound):
		return 1
	case errors.Is(err, device.ErrExists):
		return 2
	case errors.Is(err, device.ErrDown):
		return 4
	default:
		return 5
	}
}

func (p *PBX) serve(nc net.Conn) {
	defer func() {
		nc.Close()
		p.mu.Lock()
		delete(p.conns, nc)
		p.mu.Unlock()
	}()
	r := bufio.NewReader(nc)
	w := bufio.NewWriter(nc)
	session := "anonymous"
	reply := func(format string, args ...any) bool {
		fmt.Fprintf(w, format+"\n", args...)
		return w.Flush() == nil
	}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields, err := device.SplitFields(strings.TrimRight(line, "\r\n"))
		if err != nil {
			if !reply("error 3 %s", err) {
				return
			}
			continue
		}
		if len(fields) == 0 {
			continue
		}
		switch strings.ToLower(fields[0]) {
		case "login":
			if len(fields) != 2 {
				reply("error 3 login needs a session name")
				continue
			}
			session = fields[1]
			if !reply("ok") {
				return
			}
		case "logout":
			reply("ok")
			return
		case "monitor":
			if len(fields) != 2 || strings.ToLower(fields[1]) != "on" {
				reply("error 3 usage: monitor on")
				continue
			}
			if !reply("ok") {
				return
			}
			p.monitor(nc, w)
			return
		case "add":
			p.handleAdd(session, fields, reply)
		case "change":
			p.handleChange(session, fields, reply)
		case "remove":
			if len(fields) != 3 || strings.ToLower(fields[1]) != "station" {
				reply("error 3 usage: remove station <ext>")
				continue
			}
			if err := p.Store.Delete(session, fields[2]); err != nil {
				reply("error %d %s", errorCode(err), err)
				continue
			}
			if !reply("ok") {
				return
			}
		case "display":
			if len(fields) != 3 || strings.ToLower(fields[1]) != "station" {
				reply("error 3 usage: display station <ext>")
				continue
			}
			rec, err := p.Store.Get(fields[2])
			if err != nil {
				reply("error %d %s", errorCode(err), err)
				continue
			}
			for _, f := range Fields {
				if v := rec.First(f); v != "" {
					reply("field %s %s", f, device.QuoteField(v))
				}
			}
			if !reply("end") {
				return
			}
		case "dump":
			recs, err := p.Store.Dump()
			if err != nil {
				reply("error %d %s", errorCode(err), err)
				continue
			}
			for _, rec := range recs {
				reply("record %s", encodeFields(rec))
			}
			if !reply("end") {
				return
			}
		default:
			if !reply("error 3 unknown command %q", fields[0]) {
				return
			}
		}
	}
}

func (p *PBX) handleAdd(session string, fields []string, reply func(string, ...any) bool) {
	if len(fields) < 2 || strings.ToLower(fields[1]) != "station" {
		reply("error 3 usage: add station <Field> <value> ...")
		return
	}
	rec, err := decodeFields(fields[2:])
	if err != nil {
		reply("error 3 %s", err)
		return
	}
	if _, err := p.Store.Add(session, rec); err != nil {
		reply("error %d %s", errorCode(err), err)
		return
	}
	reply("ok")
}

func (p *PBX) handleChange(session string, fields []string, reply func(string, ...any) bool) {
	if len(fields) < 3 || strings.ToLower(fields[1]) != "station" {
		reply("error 3 usage: change station <ext> <Field> <value> ...")
		return
	}
	key := fields[2]
	changes, err := decodeFields(fields[3:])
	if err != nil {
		reply("error 3 %s", err)
		return
	}
	old, err := p.Store.Get(key)
	if err != nil {
		reply("error %d %s", errorCode(err), err)
		return
	}
	// Read-modify-write of the listed fields; an empty value clears.
	for _, f := range Fields {
		k := strings.ToLower(f)
		if vs, present := changes[k]; present {
			if len(vs) == 1 && vs[0] == "" {
				old.Set(f)
			} else {
				old.Set(f, vs...)
			}
		}
	}
	if _, err := p.Store.Modify(session, key, old); err != nil {
		reply("error %d %s", errorCode(err), err)
		return
	}
	reply("ok")
}

// decodeFields parses "Field value Field value ..." pairs. A "" value is
// preserved so change can clear fields.
func decodeFields(kv []string) (lexpress.Record, error) {
	if len(kv)%2 != 0 {
		return nil, errors.New("fields must come in name/value pairs")
	}
	rec := lexpress.NewRecord()
	for i := 0; i < len(kv); i += 2 {
		name := kv[i]
		if !validField(name) {
			return nil, fmt.Errorf("unknown field %q", name)
		}
		rec[strings.ToLower(name)] = []string{kv[i+1]}
	}
	return rec, nil
}

func validField(name string) bool {
	for _, f := range Fields {
		if strings.EqualFold(f, name) {
			return true
		}
	}
	return false
}

func encodeFields(rec lexpress.Record) string {
	var parts []string
	for _, f := range Fields {
		if v := rec.First(f); v != "" {
			parts = append(parts, f, device.QuoteField(v))
		}
	}
	return strings.Join(parts, " ")
}

// monitor streams notify blocks to a monitor connection until it drops.
func (p *PBX) monitor(nc net.Conn, w *bufio.Writer) {
	ch := p.Store.Subscribe()
	defer p.Store.Unsubscribe(ch)
	// Drain any input; when the peer (or Close) drops the connection the
	// read fails and done unblocks the notification loop below.
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 256)
		for {
			if _, err := nc.Read(buf); err != nil {
				nc.Close()
				return
			}
		}
	}()
	for {
		var n device.Notification
		var ok bool
		select {
		case n, ok = <-ch:
			if !ok {
				return
			}
		case <-done:
			return
		}
		var op string
		switch n.Op {
		case lexpress.OpAdd:
			op = "add"
		case lexpress.OpModify:
			op = "change"
		case lexpress.OpDelete:
			op = "remove"
		}
		fmt.Fprintf(w, "notify %s session %s key %s\n", op, device.QuoteField(n.Session), device.QuoteField(n.Key))
		if n.Old != nil {
			fmt.Fprintf(w, "old %s\n", encodeFields(n.Old))
		}
		if n.New != nil {
			fmt.Fprintf(w, "new %s\n", encodeFields(n.New))
		}
		fmt.Fprintln(w, "end")
		if w.Flush() != nil {
			return
		}
	}
}
