package device

import (
	"sync"

	"metacomm/internal/lexpress"
)

// StoreConverter adapts a Store directly to the Converter interface for
// devices that live in the same process — the quickest way to integrate a
// new data source (paper §7: "new data sources can be easily added"): build
// a Store with the device's fields, write two lexpress mappings, wrap with
// a StoreConverter, register a DeviceFilter.
//
// Like the network converters it suppresses notifications for its own
// session's commits, so the Update Manager never sees an echo of the
// updates it applied itself.
type StoreConverter struct {
	store   *Store
	session string

	mu     sync.Mutex
	raw    <-chan Notification
	out    chan Notification
	closed bool
}

var _ Converter = (*StoreConverter)(nil)

// NewStoreConverter wraps store; session names the integration (updates it
// applies are committed under this name and not echoed back).
func NewStoreConverter(store *Store, session string) *StoreConverter {
	c := &StoreConverter{
		store:   store,
		session: session,
		raw:     store.Subscribe(),
		out:     make(chan Notification, 256),
	}
	go c.pump()
	return c
}

func (c *StoreConverter) pump() {
	defer close(c.out)
	for n := range c.raw {
		if n.Session == c.session {
			continue
		}
		select {
		case c.out <- n:
		default: // drop; synchronization recovers
		}
	}
}

// Name implements Converter.
func (c *StoreConverter) Name() string { return c.store.Name() }

// Get implements Converter.
func (c *StoreConverter) Get(key string) (lexpress.Record, error) { return c.store.Get(key) }

// Add implements Converter.
func (c *StoreConverter) Add(rec lexpress.Record) (lexpress.Record, error) {
	return c.store.Add(c.session, rec)
}

// Modify implements Converter.
func (c *StoreConverter) Modify(key string, rec lexpress.Record) (lexpress.Record, error) {
	return c.store.Modify(c.session, key, rec)
}

// Delete implements Converter.
func (c *StoreConverter) Delete(key string) error { return c.store.Delete(c.session, key) }

// Dump implements Converter.
func (c *StoreConverter) Dump() ([]lexpress.Record, error) { return c.store.Dump() }

// Notifications implements Converter.
func (c *StoreConverter) Notifications() <-chan Notification { return c.out }

// Close implements Converter. The pump goroutine exits when the store
// unsubscribes the raw channel... the Store API keeps raw channels open, so
// Close just marks the converter unusable; the buffered pump is garbage
// once the Store itself is released.
func (c *StoreConverter) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		c.store.Unsubscribe(c.raw)
	}
	return nil
}
