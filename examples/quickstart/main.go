// Quickstart: bring up a complete MetaComm system, create one person
// through LDAP, and watch the single update configure the Definity PBX and
// the messaging platform — then make a direct device update and watch it
// flow back into the directory.
package main

import (
	"fmt"
	"log"
	"time"

	metacomm "metacomm"
	"metacomm/internal/ldap"
)

func main() {
	sys, err := metacomm.Start(metacomm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	fmt.Println("MetaComm up:")
	fmt.Println("  LDAP (LTAP):", sys.LTAPAddrActual)
	fmt.Println("  PBX:        ", sys.PBXAddrActual)
	fmt.Println("  msgplat:    ", sys.MPAddrActual)

	// 1. One LDAP add — any LDAP tool could send this.
	conn, err := sys.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	err = conn.Add("cn=John Doe,o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
		{Type: "cn", Values: []string{"John Doe"}},
		{Type: "sn", Values: []string{"Doe"}},
		{Type: "definityExtension", Values: []string{"2-9000"}},
		{Type: "roomNumber", Values: []string{"2C-401"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nadded cn=John Doe through LDAP")

	// 2. The PBX was configured by that one update...
	station, err := sys.PBX.Store.Get("2-9000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PBX station 2-9000: Name=%q Room=%q\n",
		station.First("name"), station.First("room"))

	// ...and the messaging platform too (extension -> telephone -> mailbox
	// transitive closure), including its generated mailbox id.
	mbx, err := sys.MP.Store.Get("9000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mailbox 9000: Name=%q generated id=%s\n",
		mbx.First("name"), mbx.First("mailboxid"))

	// 3. The directory materialized everything, including the device-
	// generated mailbox id.
	entry, err := conn.SearchOne(&ldap.SearchRequest{
		BaseDN: "cn=John Doe,o=Lucent", Scope: ldap.ScopeBaseObject})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndirectory entry:")
	for _, a := range entry.Attributes {
		for _, v := range a.Values {
			fmt.Printf("  %s: %s\n", a.Type, v)
		}
	}

	// 4. A direct device update through the legacy interface: the switch
	// administrator moves the phone to a new room.
	admin, err := sys.PBXAdmin("craft-terminal")
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	rec, _ := admin.Get("2-9000")
	rec.Set("Room", "5A-777")
	if _, err := admin.Modify("2-9000", rec); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nswitch administrator moved 2-9000 to room 5A-777 (direct device update)")

	// The DDU propagates asynchronously; poll the directory briefly.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		e, err := conn.SearchOne(&ldap.SearchRequest{
			BaseDN: "cn=John Doe,o=Lucent", Scope: ldap.ScopeBaseObject})
		if err == nil && e.First("roomNumber") == "5A-777" {
			fmt.Println("directory caught up: roomNumber =", e.First("roomNumber"))
			printStats(sys)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("directory did not converge")
}

func printStats(sys *metacomm.System) {
	s := sys.UM.Stats()
	fmt.Printf("\nupdate manager: %d updates processed, %d device applies, %d conditional reapplies\n",
		s.UpdatesProcessed, s.DeviceApplies, s.Reapplies)
}
