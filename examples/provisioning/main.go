// Provisioning: deploy MetaComm over devices that already hold data. The
// PBX has years of station records entered through its proprietary
// interface; MetaComm's synchronization facility (paper §4.4) populates the
// directory from them, after which bulk onboarding of new hires flows the
// other way — one LDAP add per person configures both devices.
package main

import (
	"fmt"
	"log"

	metacomm "metacomm"
	"metacomm/internal/ldap"
	"metacomm/internal/lexpress"
)

func main() {
	sys, err := metacomm.Start(metacomm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Legacy data: 20 stations entered at the switch long before MetaComm.
	names := []string{"Alice Martin", "Bob Chen", "Carol Diaz", "Dave Patel", "Eve Novak"}
	for i := 0; i < 20; i++ {
		rec := lexpress.NewRecord()
		rec.Set("extension", fmt.Sprintf("2-5%03d", i))
		rec.Set("name", fmt.Sprintf("%s %d", names[i%len(names)], i))
		rec.Set("cos", fmt.Sprintf("%d", 1+i%3))
		if _, err := sys.PBX.Store.Add("legacy", rec); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("seeded 20 legacy stations directly on the PBX")

	// Initial population: one synchronization pass, run in isolation under
	// LTAP quiesce.
	stats, err := sys.UM.Synchronize("pbx")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synchronization: %d device records -> %d directory adds (quiesced=%v)\n",
		stats.DeviceRecords, stats.DirectoryAdds, stats.QuiesceApplied)

	conn, err := sys.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	entries, err := conn.Search(&ldap.SearchRequest{
		BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.Present("definityExtension"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("directory now holds %d PBX users\n", len(entries))

	// Bulk onboarding: 10 new hires via LDAP; each add provisions the PBX
	// and (through the closure) a voice mailbox.
	for i := 0; i < 10; i++ {
		dn := fmt.Sprintf("cn=New Hire %02d,o=Lucent", i)
		err := conn.Add(dn, []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
			{Type: "cn", Values: []string{fmt.Sprintf("New Hire %02d", i)}},
			{Type: "sn", Values: []string{fmt.Sprintf("Hire %02d", i)}},
			{Type: "definityExtension", Values: []string{fmt.Sprintf("3-1%03d", i)}},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("onboarded 10 new hires through LDAP: PBX now has %d stations, msgplat %d mailboxes\n",
		sys.PBX.Store.Len(), sys.MP.Store.Len())

	// A second synchronization pass finds nothing to do — everything
	// already converged through the live update path.
	stats, err = sys.UM.Synchronize("pbx")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-sync: %d records, %d already in sync, %d adds, %d mods\n",
		stats.DeviceRecords, stats.AlreadyInSync, stats.DirectoryAdds, stats.DirectoryMods)
	if stats.DirectoryAdds != 0 || stats.DirectoryMods != 0 {
		log.Fatal("re-sync found drift after live updates")
	}
}
