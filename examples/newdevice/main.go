// New data source (paper §7: "New data sources can be easily added. The
// extensibility of MetaComm is due mostly to its lexpress component").
//
// This example integrates a THIRD device type — a paging terminal that
// knows subscribers by a pager PIN — into a running meta-directory using
// nothing but:
//
//  1. a weakly-typed record store (the device),
//  2. two lexpress mappings written as text,
//  3. the generic filter/Update Manager machinery.
//
// No schema-translation code is written; the mapping text IS the
// integration, compiled to byte code at run time.
package main

import (
	"fmt"
	"log"

	"metacomm/internal/device"
	"metacomm/internal/directory"
	"metacomm/internal/dn"
	"metacomm/internal/filter"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/ldapserver"
	"metacomm/internal/lexpress"
	"metacomm/internal/ltap"
	"metacomm/internal/mcschema"
	"metacomm/internal/um"
)

// pagerMappings integrates the paging terminal. PIN = last four digits of
// the telephone number prefixed with "P". The pager "owns" nothing in the
// person schema beyond its own identity attribute — which we piggyback on
// the generic uid attribute to avoid touching the schema at all.
const pagerMappings = `
mapping PagerToLDAP source "pager" target "ldap" {
    key PIN -> uid;
    map uid  = PIN;
    map cn   = Holder;
    map lastUpdater = "pager";
    set objectClass = "mcPerson";
    owns uid;
    derive sn = group(cn, ".* ([^ ]+)", 1);
    derive sn = cn;
}
mapping LDAPToPager source "ldap" target "pager" {
    key uid -> PIN;
    map PIN    = uid
               ? "P" + group(telephoneNumber, ".* ([0-9][0-9][0-9][0-9])", 1);
    map Holder = cn;
    partition when present(uid) or present(telephoneNumber);
    originator lastUpdater;
}
# Intra-directory closure: a person with a telephone gets a pager PIN.
mapping PagerClosure source "ldap" target "ldap" {
    key cn -> cn;
    derive uid = "P" + group(telephoneNumber, ".* ([0-9][0-9][0-9][0-9])", 1);
}
`

func main() {
	// Assemble a minimal meta-directory: directory server, LTAP, UM.
	suffix := dn.MustParse("o=Lucent")
	dit := directory.New(mcschema.New())
	attrs := directory.NewAttrs()
	attrs.Put("objectClass", "organization")
	if err := dit.Add(suffix, attrs); err != nil {
		log.Fatal(err)
	}
	dirSrv := ldapserver.NewServer(ldapserver.NewDITHandler(dit))
	dirAddr, err := dirSrv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dirSrv.Close()

	// The new device: an in-process store wrapped by the generic
	// converter. Real deployments would put a protocol converter here.
	pagerStore := device.NewStore("pager", "pin")
	pagerConv := device.NewStoreConverter(pagerStore, "metacomm")
	defer pagerConv.Close()

	// Compile the integration AT RUN TIME and build the filter.
	lib, err := lexpress.Compile(pagerMappings)
	if err != nil {
		log.Fatal(err)
	}
	pagerFilter, err := filter.NewDeviceFilter(pagerConv, lib)
	if err != nil {
		log.Fatal(err)
	}

	backing, err := ldapclient.Dial(dirAddr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer backing.Close()
	manager, err := um.New(um.Config{
		Suffix: suffix, Backing: backing, Library: lib, ClosureMapping: "PagerClosure",
	})
	if err != nil {
		log.Fatal(err)
	}
	manager.AddDevice(pagerFilter)

	gwBacking, err := ldapclient.Dial(dirAddr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer gwBacking.Close()
	gateway := ltap.NewGateway(gwBacking, manager)
	ltapSrv := ldapserver.NewServer(gateway)
	ltapAddr, err := ltapSrv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ltapSrv.Close()
	umLTAP, err := ldapclient.Dial(ltapAddr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer umLTAP.Close()
	manager.SetLTAP(umLTAP)
	if err := manager.Start(); err != nil {
		log.Fatal(err)
	}
	defer manager.Stop()

	fmt.Println("meta-directory up with ONE device type: pager (integrated from mapping text)")

	// An LDAP add provisions the pager.
	client, err := ldapclient.Dial(ltapAddr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	err = client.Add("cn=On Call,o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson"}},
		{Type: "cn", Values: []string{"On Call"}},
		{Type: "sn", Values: []string{"Call"}},
		{Type: "telephoneNumber", Values: []string{"+1 908 582 4321"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := pagerStore.Get("P4321")
	if err != nil {
		log.Fatalf("pager not provisioned: %v", err)
	}
	fmt.Printf("pager P4321 provisioned for %q by one LDAP add\n", rec.First("holder"))

	// And the directory learned the PIN through the owned attribute.
	e, err := client.SearchOne(&ldap.SearchRequest{
		BaseDN: "cn=On Call,o=Lucent", Scope: ldap.ScopeBaseObject})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("directory uid = %q (device key attribute)\n", e.First("uid"))

	fmt.Println("\nintegration source was", len(pagerMappings), "bytes of lexpress text — no Go code specific to the device's schema")
}
