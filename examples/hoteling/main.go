// Hoteling (paper §4.5): shared workspaces reserved as needed. "Using
// MetaComm administration, an authorized user/program can easily redirect a
// telephone extension to a port in another room" — a task that previously
// required a switch technician becomes one LDAP modify.
//
// This example models a block of hoteling desks, checks visiting workers in
// and out, and moves a person's extension between desks, verifying after
// each step that the PBX reflects the reservation.
package main

import (
	"fmt"
	"log"

	metacomm "metacomm"
	"metacomm/internal/ldap"
)

// desk is one reservable workspace with its wired PBX port.
type desk struct {
	Room string
	Port string
}

var desks = []desk{
	{Room: "HOT-101", Port: "01A0101"},
	{Room: "HOT-102", Port: "01A0102"},
	{Room: "HOT-103", Port: "01A0103"},
}

func main() {
	sys, err := metacomm.Start(metacomm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	conn, err := sys.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// A visiting consultant keeps her extension wherever she sits.
	const person = "cn=Dana Visitor,o=Lucent"
	err = conn.Add(person, []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
		{Type: "cn", Values: []string{"Dana Visitor"}},
		{Type: "sn", Values: []string{"Visitor"}},
		{Type: "definityExtension", Values: []string{"2-4242"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("checked in Dana Visitor with extension 2-4242")

	// Reserve desk 0, then hotel-hop to desk 2: each reservation is ONE
	// LDAP modify; MetaComm rewires the switch.
	for _, i := range []int{0, 2} {
		d := desks[i]
		err := conn.Modify(person, []ldap.Change{
			{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{d.Room}}},
			{Op: ldap.ModReplace, Attribute: ldap.Attribute{Type: "definityPort", Values: []string{d.Port}}},
		})
		if err != nil {
			log.Fatal(err)
		}
		station, err := sys.PBX.Store.Get("2-4242")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reserved %s: extension 2-4242 now on port %s (PBX says room=%s port=%s)\n",
			d.Room, d.Port, station.First("room"), station.First("port"))
		if station.First("port") != d.Port || station.First("room") != d.Room {
			log.Fatalf("PBX out of sync with reservation")
		}
	}

	// Check out: clear the desk assignment; the extension survives,
	// unassigned to any port.
	err = conn.Modify(person, []ldap.Change{
		{Op: ldap.ModDelete, Attribute: ldap.Attribute{Type: "roomNumber"}},
		{Op: ldap.ModDelete, Attribute: ldap.Attribute{Type: "definityPort"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	station, err := sys.PBX.Store.Get("2-4242")
	if err != nil {
		log.Fatal(err)
	}
	if station.Has("port") || station.Has("room") {
		log.Fatalf("check-out left the port assigned: %v", station)
	}
	fmt.Println("checked out: desk released, extension retained")

	// The whole exercise is visible in the directory, no proprietary
	// interface touched.
	e, err := conn.SearchOne(&ldap.SearchRequest{BaseDN: person, Scope: ldap.ScopeBaseObject})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final entry: extension=%s room=%q\n",
		e.First("definityExtension"), e.First("roomNumber"))
}
