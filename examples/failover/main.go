// Failover: the paper's availability argument (§1) — "updates can still be
// made directly to the device even if the directory becomes inaccessible."
// This example simulates a directory outage: administrators keep working at
// the devices through their legacy interfaces; when connectivity returns,
// a synchronization pass reconciles everything the directory missed.
package main

import (
	"fmt"
	"log"

	metacomm "metacomm"
	"metacomm/internal/ldap"
	"metacomm/internal/lexpress"
)

func main() {
	sys, err := metacomm.Start(metacomm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	conn, err := sys.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// Normal operation: a person exists everywhere.
	err = conn.Add("cn=Oncall Engineer,o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
		{Type: "cn", Values: []string{"Oncall Engineer"}},
		{Type: "sn", Values: []string{"Engineer"}},
		{Type: "definityExtension", Values: []string{"2-1111"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("normal operation: Oncall Engineer provisioned everywhere")

	// Outage: the link between MetaComm and the PBX is down. Changes are
	// committed at the switch but their notifications never reach the
	// filter. (Committing under MetaComm's own session name makes the
	// converter drop the notification — indistinguishable from a network
	// partition.)
	fmt.Println("\n--- directory link down; switch administrators keep working ---")
	station, _ := sys.PBX.Store.Get("2-1111")
	station.Set("room", "WAR-ROOM")
	if _, err := sys.PBX.Store.Modify("metacomm", "2-1111", station); err != nil {
		log.Fatal(err)
	}
	emergency := lexpress.NewRecord()
	emergency.Set("extension", "2-2222")
	emergency.Set("name", "Emergency Line")
	if _, err := sys.PBX.Store.Add("metacomm", emergency); err != nil {
		log.Fatal(err)
	}
	fmt.Println("during outage: moved 2-1111 to WAR-ROOM, added emergency line 2-2222")

	// The directory is stale.
	e, _ := conn.SearchOne(&ldap.SearchRequest{
		BaseDN: "cn=Oncall Engineer,o=Lucent", Scope: ldap.ScopeBaseObject})
	fmt.Printf("directory (stale): roomNumber=%q\n", e.First("roomNumber"))

	// Recovery: one synchronization pass under quiesce.
	fmt.Println("\n--- link restored; synchronizing ---")
	stats, err := sys.UM.Synchronize("pbx")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sync: %d device records, %d directory adds, %d directory mods, %d errors\n",
		stats.DeviceRecords, stats.DirectoryAdds, stats.DirectoryMods, stats.Errors)

	e, err = conn.SearchOne(&ldap.SearchRequest{
		BaseDN: "cn=Oncall Engineer,o=Lucent", Scope: ldap.ScopeBaseObject})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("directory (recovered): roomNumber=%q\n", e.First("roomNumber"))
	if e.First("roomNumber") != "WAR-ROOM" {
		log.Fatal("lost update not recovered")
	}
	if _, err := conn.SearchOne(&ldap.SearchRequest{
		BaseDN: "cn=Emergency Line,o=Lucent", Scope: ldap.ScopeBaseObject}); err != nil {
		log.Fatal("emergency line not recovered: ", err)
	}
	fmt.Println("emergency line present in directory — full recovery")
}
