# Tier-1 checks. `make check` is what CI (and a pre-push) should run: the
# full build+test pass plus vet and the race detector on the concurrent
# core (the sharded UM engine and the LTAP gateway/action wire).

GO ?= go

.PHONY: all build test vet race check bench

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine's ordering/quiesce guarantees are concurrency properties; run
# their tests under the race detector.
race:
	$(GO) test -race -count=1 ./internal/um/... ./internal/ltap/...

check: test vet race

# The experiment benchmarks behind EXPERIMENTS.md (long).
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1s .
