# Tier-1 checks. `make check` is what CI (and a pre-push) should run: the
# full build+test pass plus vet, the race detector on the concurrent core
# (the copy-on-write DIT, the sharded UM engine, and the LTAP
# gateway/action wire), and a one-iteration benchmark smoke.

GO ?= go

.PHONY: all build test vet race bench-smoke check bench

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine's ordering/quiesce guarantees, the DIT's copy-on-write
# search snapshots, and the filters' batched converge path are concurrency
# properties; run their tests under the race detector.
race:
	$(GO) test -race -count=1 ./internal/directory/... ./internal/um/... ./internal/ltap/... ./internal/filter/...

# One iteration of every benchmark: catches harness rot without the cost of
# a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

check: test vet race bench-smoke

# The experiment benchmarks behind EXPERIMENTS.md (long). -count is
# parameterized so `make bench BENCH_COUNT=10 | tee new.txt` produces
# benchstat-comparable samples (benchstat old.txt new.txt).
BENCH_COUNT ?= 1
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1s -count=$(BENCH_COUNT) .
