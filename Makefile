# Tier-1 checks. `make check` is what CI (and a pre-push) should run: the
# full build+test pass plus vet, the race detector on the concurrent core
# (the copy-on-write DIT, the sharded UM engine, and the LTAP
# gateway/action wire), and a one-iteration benchmark smoke.

GO ?= go

.PHONY: all build test vet race fuzz-smoke bench-smoke loadgen-smoke benchscale-smoke replication-smoke check bench bench-e19 bench-wire bench-scale bench-replica

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine's ordering/quiesce guarantees, the DIT's copy-on-write
# search snapshots, the filters' batched converge path, the device
# stores' fault injection under the outbox drainer, and the wire path's
# borrowed-buffer decode, pipelined flushing, and epoll reactor (readiness
# events racing worker turns) are concurrency properties; run their tests
# under the race detector.
race:
	$(GO) test -race -count=1 ./internal/directory/... ./internal/um/... ./internal/ltap/... ./internal/filter/... ./internal/device/... ./internal/ber/... ./internal/ldapserver/... ./internal/ldapclient/... ./internal/replica/...

# Multi-master smoke: a two-node mesh, a write accepted on each side, and a
# conflicting same-DN write — both trees must converge to one winner. Plus a
# short benchreplica pass so the E23 harness cannot rot.
replication-smoke:
	$(GO) test -run TestMultiMasterWritesAnywhereConverge -count=1 .
	$(GO) run ./cmd/benchreplica -max-nodes 2 -conns 16 -duration 1s -entries 200 -join-entries 2000 -out /tmp/bench_replica_smoke.json

# Ten seconds per fuzz target: enough to shake out decoder/parser panics on
# every run without turning check into a fuzzing campaign. The checked-in
# corpora under testdata/fuzz replay as ordinary tests in `make test`.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecode -fuzztime=10s ./internal/ber/
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/lexpress/
	$(GO) test -fuzz=FuzzCompilePattern -fuzztime=10s ./internal/lexpress/
	$(GO) test -fuzz=FuzzJournalV2Record -fuzztime=10s ./internal/directory/

# One iteration of every benchmark: catches harness rot without the cost of
# a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

# Two seconds of the wire-path load generator against an in-process system:
# catches harness rot (dial, seed, measure, JSON output) without a real run.
# The second pass serves through the epoll accept loop with a mostly-idle
# connection pool (falls back to goroutine mode off Linux).
loadgen-smoke:
	$(GO) run ./cmd/loadgen -spawn -conns 64 -duration 2s -warmup 500ms -entries 64 -out /tmp/bench_wire_smoke.json
	$(GO) run ./cmd/loadgen -spawn -accept-loop epoll -conns 32 -idle-conns 96 -idle-interval 1s -duration 2s -warmup 500ms -entries 64 -out /tmp/bench_wire_epoll_smoke.json

# A 10k-population pass of the scale benchmark: exercises segmented populate,
# online compaction under load (zero rejected writes is asserted by the tool),
# and journal-set replay, without the cost of the 1M run.
benchscale-smoke:
	$(GO) run ./cmd/benchscale -pops 10000 -ops 200 -out /tmp/bench_scale_smoke.json

check: test vet race fuzz-smoke bench-smoke loadgen-smoke benchscale-smoke replication-smoke

# The experiment benchmarks behind EXPERIMENTS.md (long). -count is
# parameterized so `make bench BENCH_COUNT=10 | tee new.txt` produces
# benchstat-comparable samples (benchstat old.txt new.txt).
BENCH_COUNT ?= 1
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1s -count=$(BENCH_COUNT) .

# E19 only: the durable-write group-commit matrix (sync mode x writer count)
# behind EXPERIMENTS.md E19. Reports recs/group and fsyncs/op alongside
# ns/op; compare group/writers=16 against always/writers=16.
bench-e19:
	$(GO) test -run '^$$' -bench BenchmarkE19DurableWrites -benchtime=1s -count=$(BENCH_COUNT) .

# The wire-path benchmarks behind EXPERIMENTS.md E20 and E24: a real
# metacommd process driven at high active-connection count, then the
# mostly-idle matrix — goroutine vs epoll accept loops at ~1k and ~10k
# held-open connections — merged into BENCH_wire_<rev>.json at the repo
# root with a side-by-side summary. Tunables: CONNS, DURATION, PIPELINE,
# ENTRIES, ACTIVE, IDLE_TIERS, IDLE_INTERVAL (see scripts/bench_wire.sh).
bench-wire:
	sh scripts/bench_wire.sh

# The population-scale benchmark behind EXPERIMENTS.md E21: per-op latency,
# heap per entry, crash-recovery replay, and compaction-under-load from 1k to
# 1M entries. Writes BENCH_scale_<rev>.json at the repo root. Tunables:
# POPS, SEGMENTS, OPS (see scripts/bench_scale.sh).
bench-scale:
	sh scripts/bench_scale.sh

# The replication benchmark behind EXPERIMENTS.md E23: read throughput of a
# 1/2/3-node multi-master mesh plus new-node join catch-up rate. Writes
# BENCH_replica_<rev>.json at the repo root. Tunables: CONNS, DURATION,
# ENTRIES, JOIN_ENTRIES (see scripts/bench_replica.sh).
bench-replica:
	sh scripts/bench_replica.sh
