package metacomm_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	metacomm "metacomm"
	"metacomm/internal/ldap"
	"metacomm/internal/ldapclient"
	"metacomm/internal/ldapserver"
	"metacomm/internal/lexpress"
	"metacomm/internal/mcschema"
	"metacomm/internal/replica"
	"metacomm/internal/um"
)

func startSystem(t testing.TB, cfg metacomm.Config) *metacomm.System {
	t.Helper()
	s, err := metacomm.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func client(t testing.TB, s *metacomm.System) *ldapclient.Conn {
	t.Helper()
	c, err := s.Client()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func johnDoeAttrs() []ldap.Attribute {
	return []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson", "definityUser", "messagingUser"}},
		{Type: "cn", Values: []string{"John Doe"}},
		{Type: "sn", Values: []string{"Doe"}},
		{Type: "definityExtension", Values: []string{"2-9000"}},
		{Type: "roomNumber", Values: []string{"2C-401"}},
	}
}

const johnDN = "cn=John Doe,o=Lucent"

func TestSystemStartsAndServesReads(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	c := client(t, s)
	entries, err := c.Search(&ldap.SearchRequest{BaseDN: "o=Lucent", Scope: ldap.ScopeBaseObject})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].First("o") != "Lucent" {
		t.Fatalf("suffix entry = %v", entries)
	}
}

// TestLDAPAddProvisionsDevices is the paper's headline flow: one LDAP add
// configures the person on the PBX and (via the extension -> telephone ->
// mailbox transitive closure) the messaging platform; the platform's
// generated mailbox id flows back into the directory.
func TestLDAPAddProvisionsDevices(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	c := client(t, s)
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}

	// PBX has the station.
	station, err := s.PBX.Store.Get("2-9000")
	if err != nil {
		t.Fatalf("station missing: %v", err)
	}
	if station.First("name") != "John Doe" || station.First("room") != "2C-401" {
		t.Errorf("station = %v", station)
	}

	// Closure derived the telephone number and the mailbox number.
	e, err := c.SearchOne(&ldap.SearchRequest{BaseDN: johnDN, Scope: ldap.ScopeBaseObject})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.First("telephoneNumber"); got != "+1 908 582 9000" {
		t.Errorf("telephoneNumber = %q", got)
	}
	if got := e.First("mailboxNumber"); got != "9000" {
		t.Errorf("mailboxNumber = %q", got)
	}

	// MP has the mailbox, and its generated id reached the directory.
	mbx, err := s.MP.Store.Get("9000")
	if err != nil {
		t.Fatalf("mailbox missing: %v", err)
	}
	id := mbx.First("mailboxid")
	if !strings.HasPrefix(id, "MBX") {
		t.Fatalf("mailbox id = %q", id)
	}
	if got := e.First("mailboxId"); got != id {
		t.Errorf("directory mailboxId = %q, device has %q", got, id)
	}
	// The write-back added the auxiliary class it needed.
	if !containsValue(e.Attr("objectClass"), "messagingUser") {
		t.Errorf("objectClass = %v", e.Attr("objectClass"))
	}
}

func containsValue(vs []string, v string) bool {
	for _, x := range vs {
		if strings.EqualFold(x, v) {
			return true
		}
	}
	return false
}

// TestTelephoneChangeRipplesEverywhere reproduces §4.2's closure example:
// changing the telephone number changes the Definity extension and the
// voice mailbox, at the directory AND at both devices.
func TestTelephoneChangeRipplesEverywhere(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	c := client(t, s)
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}
	if err := c.Modify(johnDN, []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "telephoneNumber", Values: []string{"+1 908 583 1234"}}}}); err != nil {
		t.Fatal(err)
	}
	e, err := c.SearchOne(&ldap.SearchRequest{BaseDN: johnDN, Scope: ldap.ScopeBaseObject})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.First("definityExtension"); got != "3-1234" {
		t.Errorf("definityExtension = %q", got)
	}
	if got := e.First("mailboxNumber"); got != "1234" {
		t.Errorf("mailboxNumber = %q", got)
	}
	// The station migrated to the new extension key.
	if _, err := s.PBX.Store.Get("2-9000"); err == nil {
		t.Error("old station survived the number change")
	}
	if _, err := s.PBX.Store.Get("3-1234"); err != nil {
		t.Errorf("new station missing: %v", err)
	}
	// The mailbox migrated too.
	if _, err := s.MP.Store.Get("9000"); err == nil {
		t.Error("old mailbox survived")
	}
	if _, err := s.MP.Store.Get("1234"); err != nil {
		t.Errorf("new mailbox missing: %v", err)
	}
}

// TestDDUPropagatesToDirectoryAndOtherDevices is the §4.4 DDU sequence: a
// switch administrator adds a station directly on the PBX; MetaComm pulls
// it into the directory, provisions the mailbox, and reapplies the update
// to the PBX (conditionally).
func TestDDUPropagatesToDirectoryAndOtherDevices(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	admin, err := s.PBXAdmin("craft-terminal")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	rec := lexpress.NewRecord()
	rec.Set("Extension", "2-7000")
	rec.Set("Name", "Pat Smith")
	rec.Set("Room", "3B-200")
	if _, err := admin.Add(rec); err != nil {
		t.Fatal(err)
	}

	c := client(t, s)
	var entry *ldapclient.Entry
	waitFor(t, "directory entry for Pat Smith", func() bool {
		entries, err := c.Search(&ldap.SearchRequest{
			BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree,
			Filter: ldap.Eq("definityExtension", "2-7000"),
		})
		if err != nil || len(entries) != 1 {
			return false
		}
		entry = entries[0]
		return true
	})
	if entry.First("cn") != "Pat Smith" || entry.First("roomNumber") != "3B-200" {
		t.Errorf("entry = %v", entry.Attributes)
	}
	if entry.First("telephoneNumber") != "+1 908 582 7000" {
		t.Errorf("telephoneNumber = %q", entry.First("telephoneNumber"))
	}
	if entry.First("lastUpdater") != "pbx" {
		t.Errorf("lastUpdater = %q", entry.First("lastUpdater"))
	}
	// The mailbox was provisioned from the DDU via the closure.
	waitFor(t, "mailbox 7000", func() bool {
		_, err := s.MP.Store.Get("7000")
		return err == nil
	})
	// The update was reapplied to the PBX conditionally, and the station
	// still holds the administrator's data.
	waitFor(t, "conditional reapply", func() bool {
		return s.UM.Stats().Reapplies >= 1
	})
	station, err := s.PBX.Store.Get("2-7000")
	if err != nil || station.First("name") != "Pat Smith" {
		t.Errorf("station after reapply = %v, %v", station, err)
	}
}

// TestDDUModifyConverges: a direct change at the device shows up in the
// directory.
func TestDDUModifyConverges(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	c := client(t, s)
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}
	admin, err := s.PBXAdmin("craft-terminal")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	station, err := admin.Get("2-9000")
	if err != nil {
		t.Fatal(err)
	}
	station.Set("Room", "MOVED-1")
	if _, err := admin.Modify("2-9000", station); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "room change in directory", func() bool {
		e, err := c.SearchOne(&ldap.SearchRequest{BaseDN: johnDN, Scope: ldap.ScopeBaseObject})
		return err == nil && e.First("roomNumber") == "MOVED-1"
	})
}

// TestDDUDeleteClearsOwnedAttributes: removing the station directly at the
// switch clears the PBX-owned attributes from the person but keeps the
// person (and their mailbox).
func TestDDUDeleteClearsOwnedAttributes(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	c := client(t, s)
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}
	admin, err := s.PBXAdmin("craft-terminal")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if err := admin.Delete("2-9000"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "definity attributes cleared", func() bool {
		e, err := c.SearchOne(&ldap.SearchRequest{BaseDN: johnDN, Scope: ldap.ScopeBaseObject})
		return err == nil && !e.HasAttr("definityExtension")
	})
	e, _ := c.SearchOne(&ldap.SearchRequest{BaseDN: johnDN, Scope: ldap.ScopeBaseObject})
	if e.First("cn") != "John Doe" {
		t.Error("person deleted outright")
	}
	if e.First("mailboxNumber") != "9000" {
		t.Errorf("mailbox association lost: %v", e.Attributes)
	}
	// The station stays deleted (no resurrection by the reapply).
	time.Sleep(100 * time.Millisecond)
	if _, err := s.PBX.Store.Get("2-9000"); err == nil {
		t.Error("station resurrected")
	}
}

// TestLDAPDeleteRemovesDeviceRecords: deleting the person through LDAP
// removes both device records.
func TestLDAPDeleteRemovesDeviceRecords(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	c := client(t, s)
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}
	if s.PBX.Store.Len() != 1 || s.MP.Store.Len() != 1 {
		t.Fatal("devices not provisioned")
	}
	if err := c.Delete(johnDN); err != nil {
		t.Fatal(err)
	}
	if s.PBX.Store.Len() != 0 {
		t.Error("station survived person delete")
	}
	if s.MP.Store.Len() != 0 {
		t.Error("mailbox survived person delete")
	}
}

// TestRenamePropagates exercises the ModifyRDN path: renaming the person
// through LDAP updates the device names via the closure.
func TestRenamePropagates(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	c := client(t, s)
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}
	if err := c.ModifyDN(johnDN, "cn=John Q Doe", true); err != nil {
		t.Fatal(err)
	}
	e, err := c.SearchOne(&ldap.SearchRequest{
		BaseDN: "cn=John Q Doe,o=Lucent", Scope: ldap.ScopeBaseObject})
	if err != nil {
		t.Fatal(err)
	}
	if e.First("definityName") != "John Q Doe" {
		t.Errorf("definityName = %q", e.First("definityName"))
	}
	station, err := s.PBX.Store.Get("2-9000")
	if err != nil {
		t.Fatal(err)
	}
	if station.First("name") != "John Q Doe" {
		t.Errorf("station name = %q", station.First("name"))
	}
}

// TestDDURenameBecomesModifyRDNPair: a name change at the device reaches
// the directory as the §5.1 ModifyRDN + Modify pair.
func TestDDURenameBecomesModifyRDNPair(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	c := client(t, s)
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}
	admin, err := s.PBXAdmin("craft-terminal")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	station, err := admin.Get("2-9000")
	if err != nil {
		t.Fatal(err)
	}
	station.Set("Name", "Johnny Doe")
	station.Set("Room", "9Z-999") // name (RDN) + other data in one DDU
	if _, err := admin.Modify("2-9000", station); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "renamed entry", func() bool {
		e, err := c.SearchOne(&ldap.SearchRequest{
			BaseDN: "cn=Johnny Doe,o=Lucent", Scope: ldap.ScopeBaseObject})
		return err == nil && e.First("roomNumber") == "9Z-999"
	})
	if _, err := c.SearchOne(&ldap.SearchRequest{BaseDN: johnDN, Scope: ldap.ScopeBaseObject}); err == nil {
		t.Error("old DN still resolves")
	}
}

// TestDeviceFailureIsLoggedToDirectory: a failed device update aborts, is
// recorded under ou=errors, and the administrator can browse it (§4.4).
func TestDeviceFailureIsLoggedToDirectory(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	c := client(t, s)
	s.MP.Store.FailNext("mailbox quota exhausted")
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err) // the LDAP side and PBX still succeed
	}
	errs, err := s.UM.Errors()
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 1 {
		t.Fatalf("errors logged = %d", len(errs))
	}
	e := errs[0]
	if e.First("mcErrorTarget") != "msgplat" || !strings.Contains(e.First("mcErrorMessage"), "quota") {
		t.Errorf("error entry = %v", e.Attributes)
	}
	// PBX was still updated (per-device abort, not global).
	if _, err := s.PBX.Store.Get("2-9000"); err != nil {
		t.Error("PBX update aborted with the MP's")
	}
	// Administrator clears the log after repairing.
	n, err := s.UM.ClearErrors()
	if err != nil || n != 1 {
		t.Errorf("ClearErrors = %d, %v", n, err)
	}
}

// TestSynchronizationRecoversLostUpdates: changes committed at the device
// whose notifications were lost (here: suppressed as self-echo) are
// recovered by an explicit synchronization pass under quiesce.
func TestSynchronizationRecoversLostUpdates(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	c := client(t, s)
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}
	// Commit directly in the store under the UM's own session name: the
	// converter suppresses the echo, exactly like a notification lost to a
	// network partition.
	station, _ := s.PBX.Store.Get("2-9000")
	station.Set("room", "LOST-42")
	if _, err := s.PBX.Store.Modify("metacomm", "2-9000", station); err != nil {
		t.Fatal(err)
	}
	lost := lexpress.NewRecord()
	lost.Set("extension", "2-8888")
	lost.Set("name", "Lost Larson")
	if _, err := s.PBX.Store.Add("metacomm", lost); err != nil {
		t.Fatal(err)
	}

	stats, err := s.UM.Synchronize("pbx")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.QuiesceApplied {
		t.Error("sync ran without quiesce")
	}
	if stats.DirectoryAdds != 1 || stats.DirectoryMods != 1 {
		t.Errorf("stats = %+v", stats)
	}
	e, err := c.SearchOne(&ldap.SearchRequest{BaseDN: johnDN, Scope: ldap.ScopeBaseObject})
	if err != nil || e.First("roomNumber") != "LOST-42" {
		t.Errorf("room not recovered: %v %v", e, err)
	}
	if _, err := c.SearchOne(&ldap.SearchRequest{
		BaseDN: "cn=Lost Larson,o=Lucent", Scope: ldap.ScopeBaseObject}); err != nil {
		t.Errorf("lost add not recovered: %v", err)
	}
	if s.Gateway.Quiesced() {
		t.Error("gateway left quiesced")
	}
}

// TestInitialSyncPopulatesDirectory: starting MetaComm against devices that
// already hold data loads it into the directory (the paper's initial
// population use of synchronization).
func TestInitialSyncPopulatesDirectory(t *testing.T) {
	// Build a system without initial sync, seed the PBX "before MetaComm
	// was deployed", then synchronize.
	s := startSystem(t, metacomm.Config{})
	for i := 0; i < 5; i++ {
		rec := lexpress.NewRecord()
		rec.Set("extension", fmt.Sprintf("2-10%02d", i))
		rec.Set("name", fmt.Sprintf("Employee %d", i))
		if _, err := s.PBX.Store.Add("legacy-load", rec); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the DDU path OR sync explicitly; sync is the deterministic way.
	if _, err := s.UM.Synchronize("pbx"); err != nil {
		t.Fatal(err)
	}
	c := client(t, s)
	entries, err := c.Search(&ldap.SearchRequest{
		BaseDN: "o=Lucent", Scope: ldap.ScopeWholeSubtree,
		Filter: ldap.Present("definityExtension"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 5 {
		t.Errorf("populated %d entries, want >= 5", len(entries))
	}
}

// TestWriteWriteRaceConverges: a DDU and an LDAP update race on the same
// person; the paper's queue-order reapplication quickly resolves the
// inconsistencies and every repository converges to the same values.
func TestWriteWriteRaceConverges(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	c := client(t, s)
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}
	admin, err := s.PBXAdmin("craft-terminal")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		station, err := admin.Get("2-9000")
		if err != nil {
			return
		}
		station.Set("Room", "DDU-ROOM")
		admin.Modify("2-9000", station)
	}()
	go func() {
		defer wg.Done()
		c.Modify(johnDN, []ldap.Change{{Op: ldap.ModReplace,
			Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"LDAP-ROOM"}}}})
	}()
	wg.Wait()

	waitFor(t, "convergence", func() bool {
		e, err := c.SearchOne(&ldap.SearchRequest{BaseDN: johnDN, Scope: ldap.ScopeBaseObject})
		if err != nil {
			return false
		}
		station, err := s.PBX.Store.Get("2-9000")
		if err != nil {
			return false
		}
		room := e.First("roomNumber")
		return room != "" && station.First("room") == room
	})
}

// TestDeviceOutageAndRepair: a device that is down during fanout gets the
// error logged; after it returns, a synchronization pass repairs the gap —
// the paper's recovery story for "catastrophic communication or storage
// errors" (§4).
func TestDeviceOutageAndRepair(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	c := client(t, s)
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}

	// The PBX goes down; an LDAP update still succeeds for the directory
	// and the messaging platform.
	s.PBX.Store.SetDown(true)
	if err := c.Modify(johnDN, []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"OUTAGE-1"}}}}); err != nil {
		t.Fatal(err)
	}
	e, _ := c.SearchOne(&ldap.SearchRequest{BaseDN: johnDN, Scope: ldap.ScopeBaseObject})
	if e.First("roomNumber") != "OUTAGE-1" {
		t.Fatal("directory update lost during device outage")
	}
	errs, err := s.UM.Errors()
	if err != nil || len(errs) == 0 {
		t.Fatalf("outage not logged: %d, %v", len(errs), err)
	}

	// The PBX is stale.
	s.PBX.Store.SetDown(false)
	station, _ := s.PBX.Store.Get("2-9000")
	if station.First("room") == "OUTAGE-1" {
		t.Fatal("test premise broken: device saw the update")
	}

	// Repair by synchronization. The DEVICE was the side that was cut
	// off, so the administrator runs the directory-wins pass.
	stats, err := s.UM.SynchronizeWithPolicy("pbx", um.DirectoryWins)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeviceMods != 1 {
		t.Errorf("stats = %+v", stats)
	}
	station, _ = s.PBX.Store.Get("2-9000")
	if station.First("room") != "OUTAGE-1" {
		t.Errorf("device not repaired: room = %q", station.First("room"))
	}
	// The directory keeps its (newer) state.
	e, _ = c.SearchOne(&ldap.SearchRequest{BaseDN: johnDN, Scope: ldap.ScopeBaseObject})
	if e.First("roomNumber") != "OUTAGE-1" {
		t.Error("directory state regressed")
	}
}

// TestLibraryModeWorks runs the whole stack with LTAP bound in-process
// (§5.5's alternative coupling).
func TestLibraryModeWorks(t *testing.T) {
	s := startSystem(t, metacomm.Config{Mode: metacomm.ModeLibrary})
	c := client(t, s)
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PBX.Store.Get("2-9000"); err != nil {
		t.Errorf("station missing in library mode: %v", err)
	}
}

// TestConcurrentUpdatesAcrossEntries drives parallel clients at different
// entries to exercise LTAP's per-entry locking under load.
func TestConcurrentUpdatesAcrossEntries(t *testing.T) {
	s := startSystem(t, metacomm.Config{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc, err := s.Client()
			if err != nil {
				errs <- err
				return
			}
			defer cc.Close()
			dn := fmt.Sprintf("cn=Worker %d,o=Lucent", i)
			err = cc.Add(dn, []ldap.Attribute{
				{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
				{Type: "sn", Values: []string{"Worker"}},
				{Type: "definityExtension", Values: []string{fmt.Sprintf("2-40%02d", i)}},
			})
			if err != nil {
				errs <- err
				return
			}
			errs <- cc.Modify(dn, []ldap.Change{{Op: ldap.ModReplace,
				Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"R"}}}})
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := s.PBX.Store.Len(); got != 8 {
		t.Errorf("stations = %d, want 8", got)
	}
}

// TestAuditLogRecordsUpdates: the gateway's trigger facility drives an
// audit trail of every trapped update, including rejected ones.
func TestAuditLogRecordsUpdates(t *testing.T) {
	var buf syncBuffer
	s := startSystem(t, metacomm.Config{AuditLog: &buf})
	c := client(t, s)
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}
	// A rejected update must appear too.
	c.Delete("cn=Ghost,o=Lucent")
	s.Gateway.WaitTriggers()
	out := buf.String()
	if !strings.Contains(out, `op=add dn="cn=John Doe,o=Lucent"`) {
		t.Errorf("audit log missing add:\n%s", out)
	}
	if !strings.Contains(out, `op=delete dn="cn=Ghost,o=Lucent" by="" result=noSuchObject`) {
		t.Errorf("audit log missing rejected delete:\n%s", out)
	}
}

// syncBuffer is a mutex-guarded bytes buffer for concurrent writers.
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDurableRestart: with a data directory configured, the directory
// contents survive a full system restart; a synchronization pass then
// reconciles whatever the (non-durable) devices need.
func TestDurableRestart(t *testing.T) {
	dataDir := t.TempDir()
	s1, err := metacomm.Start(metacomm.Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := s1.Client()
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	s1.Close()

	// Restart against the same data directory: the person (including the
	// device-generated mailboxId) is back without any device involvement.
	s2 := startSystem(t, metacomm.Config{DataDir: dataDir})
	c2 := client(t, s2)
	e, err := c2.SearchOne(&ldap.SearchRequest{BaseDN: johnDN, Scope: ldap.ScopeBaseObject})
	if err != nil {
		t.Fatal(err)
	}
	if e.First("definityExtension") != "2-9000" || !strings.HasPrefix(e.First("mailboxId"), "MBX") {
		t.Errorf("restored entry = %v", e.Attributes)
	}
	// The fresh (empty) devices are repopulated by one sync pass.
	if _, err := s2.UM.SynchronizeAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.PBX.Store.Get("2-9000"); err != nil {
		t.Errorf("station not rebuilt from durable directory: %v", err)
	}
	if _, err := s2.MP.Store.Get("9000"); err != nil {
		t.Errorf("mailbox not rebuilt: %v", err)
	}
}

// TestSystemWithReadReplica: a read-only replica follows the full system's
// directory; writes land through LTAP, reads are served by the replica.
func TestSystemWithReadReplica(t *testing.T) {
	s := startSystem(t, metacomm.Config{ReplicationAddr: "127.0.0.1:0"})
	r := replica.New(s.ReplicationAddrActual, mcschema.New())
	r.Start()
	t.Cleanup(r.Stop)

	// Serve the replica read-only over LDAP.
	h := ldapserver.NewDITHandler(r.DIT)
	h.ReadOnly = true
	srv := ldapserver.NewServer(h)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	c := client(t, s)
	if err := c.Add(johnDN, johnDoeAttrs()); err != nil {
		t.Fatal(err)
	}
	rc, err := ldapclient.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	waitFor(t, "replica to catch up", func() bool {
		e, err := rc.SearchOne(&ldap.SearchRequest{BaseDN: johnDN, Scope: ldap.ScopeBaseObject})
		return err == nil && e.First("definityExtension") == "2-9000" &&
			strings.HasPrefix(e.First("mailboxId"), "MBX")
	})
	// The replica refuses writes.
	err = rc.Delete(johnDN)
	if !ldap.IsCode(err, ldap.ResultInsufficientAccess) {
		t.Errorf("replica write err = %v", err)
	}
	// The primary still has the entry and the devices are untouched.
	if _, err := s.PBX.Store.Get("2-9000"); err != nil {
		t.Error("primary state damaged by replica write attempt")
	}
}

// TestQuiesceDrainsShardedEngine drives writers at a sharded UM and checks
// the two quiesce layers: the engine's drain barrier alone (admission
// paused, all shard queues flushed, nothing processed until Resume), and a
// full synchronization pass under live write load (gateway quiesce + engine
// drain together, §5.1).
func TestQuiesceDrainsShardedEngine(t *testing.T) {
	s := startSystem(t, metacomm.Config{UMShards: 4, DeviceSessions: 2})
	setup := client(t, s)
	const people = 8
	for i := 0; i < people; i++ {
		err := setup.Add(fmt.Sprintf("cn=Quiesce %d,o=Lucent", i), []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson", "definityUser"}},
			{Type: "cn", Values: []string{fmt.Sprintf("Quiesce %d", i)}},
			{Type: "sn", Values: []string{"Quiesce"}},
			{Type: "definityExtension", Values: []string{fmt.Sprintf("3-%04d", i)}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < people; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			conn, err := s.Client()
			if err != nil {
				return
			}
			defer conn.Close()
			dn := fmt.Sprintf("cn=Quiesce %d,o=Lucent", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Busy rejections are acceptable under pressure; anything
				// else would be a real failure but is converged below.
				conn.Modify(dn, []ldap.Change{{Op: ldap.ModReplace,
					Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{fmt.Sprintf("W%d-%d", w, i)}}}})
			}
		}(w)
	}
	var stopOnce sync.Once
	stopWriters := func() { stopOnce.Do(func() { close(stop) }); writers.Wait() }
	defer stopWriters()

	waitFor(t, "writers to get updates in flight", func() bool {
		return s.UM.Stats().UpdatesProcessed > uint64(people)
	})

	// Layer 1: the engine drain barrier alone. After Quiesce returns, the
	// shard queues are empty and stay empty — the still-running writers are
	// held at the admission barrier.
	if !s.UM.Quiesce() {
		t.Fatal("engine Quiesce reported already-quiesced")
	}
	if p := s.UM.Stats().Pending; p != 0 {
		t.Fatalf("Pending = %d after engine quiesce", p)
	}
	processed := s.UM.Stats().UpdatesProcessed
	time.Sleep(50 * time.Millisecond)
	if got := s.UM.Stats().UpdatesProcessed; got != processed {
		t.Fatalf("engine processed %d updates while quiesced", got-processed)
	}
	s.UM.Resume()

	// Layer 2: a full synchronization pass with the writers still going.
	stats, err := s.UM.Synchronize("pbx")
	if err != nil {
		t.Fatalf("synchronize under load: %v", err)
	}
	if !stats.QuiesceApplied {
		t.Error("gateway quiesce not applied in gateway mode")
	}
	if stats.Errors != 0 {
		t.Errorf("sync stats = %+v", stats)
	}
	// Stop the writers before asserting the backlog is gone: with the
	// gateway's before-image cache warm, a writer can get a fresh update
	// admitted the instant the sync unquiesces.
	stopWriters()
	waitFor(t, "engine to drain after sync", func() bool {
		return s.UM.Stats().Pending == 0
	})
}
