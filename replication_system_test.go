package metacomm_test

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	metacomm "metacomm"
	"metacomm/internal/ldap"
)

// freePort grabs a loopback port the kernel considers free right now, for
// nodes that must be dialable at a known address before they start.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitFingerprints polls until every system's DIT reports the same
// fingerprint — byte-identical trees including per-entry origin stamps.
func waitFingerprints(t *testing.T, deadline time.Duration, systems ...*metacomm.System) {
	t.Helper()
	end := time.Now().Add(deadline)
	var fps []string
	for time.Now().Before(end) {
		fps = fps[:0]
		same := true
		for _, s := range systems {
			fps = append(fps, s.DIT.Fingerprint())
			if fps[len(fps)-1] != fps[0] {
				same = false
			}
		}
		if same {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("nodes did not converge: fingerprints %v", fps)
}

// TestMultiMasterJoinUnderLoad proves the tentpole's join guarantee: a new
// node seeds itself from a running peer WITHOUT quiescing it — the existing
// node keeps acking every write during the whole catch-up — and the joiner
// reaches the live cursor and accepts writes of its own.
func TestMultiMasterJoinUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// Node B's replication address is fixed up front so node A can list it
	// as a peer before B exists; A's link redials until B arrives.
	addrB := freePort(t)
	a := startSystem(t, metacomm.Config{
		NodeID:          1,
		ReplicationAddr: "127.0.0.1:0",
		Peers:           []string{addrB},
	})
	ca := client(t, a)

	const people = 80
	for i := 0; i < people; i++ {
		err := ca.Add(fmt.Sprintf("cn=Join %02d,o=Lucent", i), []ldap.Attribute{
			{Type: "objectClass", Values: []string{"mcPerson"}},
			{Type: "cn", Values: []string{fmt.Sprintf("Join %02d", i)}},
			{Type: "sn", Values: []string{"Join"}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Sustained 95/5 load against the EXISTING node. Every operation must be
	// acked — a single rejection while the joiner catches up fails the test.
	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		acked    atomic.Uint64
		rejected atomic.Uint64
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := a.Client()
			if err != nil {
				rejected.Add(1)
				return
			}
			defer conn.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				dn := fmt.Sprintf("cn=Join %02d,o=Lucent", rng.Intn(people))
				if rng.Intn(100) < 5 {
					err = conn.Modify(dn, []ldap.Change{{Op: ldap.ModReplace,
						Attribute: ldap.Attribute{Type: "roomNumber",
							Values: []string{fmt.Sprintf("W%d-%d", w, i)}}}})
				} else {
					_, err = conn.Search(&ldap.SearchRequest{BaseDN: dn, Scope: ldap.ScopeBaseObject})
				}
				if err != nil {
					rejected.Add(1)
				} else {
					acked.Add(1)
				}
			}
		}(w)
	}

	// Let the load establish itself, then bring up the joiner mid-stream.
	time.Sleep(200 * time.Millisecond)
	b := startSystem(t, metacomm.Config{
		NodeID:          2,
		ReplicationAddr: addrB,
		Peers:           []string{a.ReplicationAddrActual},
	})

	// The joiner is immediately writable — multi-master means a write landing
	// on the newest node during its own catch-up is still acked and flows to
	// the rest of the mesh.
	cb := client(t, b)
	if err := cb.Add("cn=Born On B,o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson"}},
		{Type: "cn", Values: []string{"Born On B"}},
		{Type: "sn", Values: []string{"B"}},
	}); err != nil {
		t.Fatalf("write on joiner during catch-up rejected: %v", err)
	}

	// Keep the pressure on through the catch-up window, then stop.
	time.Sleep(1 * time.Second)
	close(stop)
	wg.Wait()

	if r := rejected.Load(); r != 0 {
		t.Fatalf("%d operations rejected on the existing node during join (%d acked)", r, acked.Load())
	}
	if acked.Load() == 0 {
		t.Fatal("load generator did nothing")
	}

	// The joiner reaches the live cursor: its link's cursor catches the
	// peer's commit seq once writes stop, and the trees are byte-identical.
	waitFingerprints(t, 15*time.Second, a, b)
	seqA := a.DIT.Seq()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ps := b.Replicator.Stats().Peers
		if len(ps) == 1 && ps[0].Cursor >= seqA {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joiner cursor %d never reached peer seq %d", ps[0].Cursor, seqA)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// And the write born on the joiner made it back to the original node.
	entries, err := ca.Search(&ldap.SearchRequest{BaseDN: "cn=Born On B,o=Lucent", Scope: ldap.ScopeBaseObject})
	if err != nil || len(entries) != 1 {
		t.Fatalf("joiner-origin write missing on node A: %d entries, %v", len(entries), err)
	}
}

// TestMultiMasterWritesAnywhereConverge is the basic two-node exchange: a
// write accepted on either node appears on both, and a conflicting write on
// the same DN resolves to one winner everywhere.
func TestMultiMasterWritesAnywhereConverge(t *testing.T) {
	addrA, addrB := freePort(t), freePort(t)
	a := startSystem(t, metacomm.Config{NodeID: 1, ReplicationAddr: addrA, Peers: []string{addrB}})
	b := startSystem(t, metacomm.Config{NodeID: 2, ReplicationAddr: addrB, Peers: []string{addrA}})
	ca, cb := client(t, a), client(t, b)

	if err := ca.Add("cn=On A,o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson"}},
		{Type: "cn", Values: []string{"On A"}}, {Type: "sn", Values: []string{"A"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cb.Add("cn=On B,o=Lucent", []ldap.Attribute{
		{Type: "objectClass", Values: []string{"mcPerson"}},
		{Type: "cn", Values: []string{"On B"}}, {Type: "sn", Values: []string{"B"}},
	}); err != nil {
		t.Fatal(err)
	}
	waitFingerprints(t, 10*time.Second, a, b)

	// Concurrent same-DN modifies from both sides: one winner, both trees.
	if err := ca.Modify("cn=On A,o=Lucent", []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"from-A"}}}}); err != nil {
		t.Fatal(err)
	}
	if err := cb.Modify("cn=On A,o=Lucent", []ldap.Change{{Op: ldap.ModReplace,
		Attribute: ldap.Attribute{Type: "roomNumber", Values: []string{"from-B"}}}}); err != nil {
		t.Fatal(err)
	}
	waitFingerprints(t, 10*time.Second, a, b)
	entries, err := ca.Search(&ldap.SearchRequest{BaseDN: "cn=On A,o=Lucent", Scope: ldap.ScopeBaseObject})
	if err != nil || len(entries) != 1 {
		t.Fatalf("search: %d entries, %v", len(entries), err)
	}
	got := entries[0].First("roomNumber")
	if got != "from-A" && got != "from-B" {
		t.Fatalf("converged roomNumber = %q, want one of the two writes", got)
	}
}
